#include "store/object_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace farm::store {

namespace {
constexpr std::uint32_t kMaxProbes = 4096;
}  // namespace

ObjectStore::ObjectStore(StoreConfig config, std::size_t disks)
    : config_(config),
      codec_(erasure::make_codec(config.scheme, config.codec)),
      placement_(placement::make_rush(config.placement_seed)),
      cluster_(disks) {
  if (config_.group_payload == 0) {
    throw std::invalid_argument("ObjectStore: group_payload must be > 0");
  }
  if (disks < config_.scheme.total_blocks) {
    throw std::invalid_argument("ObjectStore: fewer disks than blocks per group");
  }
  placement_->add_cluster(disks, 1.0);
}

DiskId ObjectStore::pick_target(GroupId id, GroupMeta& meta) const {
  // Strict pass honours rack-awareness; the relaxed pass drops it (a
  // same-enclosure copy still beats no copy when the cluster is cornered).
  for (const bool relaxed : {false, true}) {
    if (relaxed && config_.disks_per_domain == 0) break;
    for (std::uint32_t probe = 0; probe < kMaxProbes; ++probe) {
      const std::uint32_t rank = meta.next_rank + probe;
      const DiskId d = placement_->candidate(id, rank);
      if (!cluster_.alive(d)) continue;
      if (std::find(meta.homes.begin(), meta.homes.end(), d) != meta.homes.end()) {
        continue;  // buddy rule
      }
      if (!relaxed && config_.disks_per_domain > 0) {
        bool conflict = false;
        for (const DiskId c : meta.homes) {
          conflict |= cluster_.alive(c) && domain_of(c) == domain_of(d);
        }
        if (conflict) continue;
      }
      meta.next_rank = rank + 1;
      return d;
    }
  }
  throw std::runtime_error("ObjectStore: no live non-buddy disk available");
}

void ObjectStore::store_group(GroupId id, GroupMeta& meta,
                              std::span<const Byte> payload) {
  const auto blocks = erasure::encode_object(*codec_, payload);
  meta.payload = payload.size();
  // Choose all homes first (the buddy rule needs the growing set), then write.
  meta.homes.clear();
  meta.homes.reserve(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    meta.homes.push_back(pick_target(id, meta));
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    cluster_.write(meta.homes[b], BlockKey{id, static_cast<std::uint16_t>(b)},
                   blocks[b]);
  }
}

void ObjectStore::drop_group(GroupId id, const GroupMeta& meta) {
  for (std::size_t b = 0; b < meta.homes.size(); ++b) {
    if (cluster_.alive(meta.homes[b])) {
      cluster_.erase(meta.homes[b], BlockKey{id, static_cast<std::uint16_t>(b)});
    }
  }
}

void ObjectStore::put(const std::string& name, std::span<const Byte> data) {
  if (contains(name)) remove(name);

  ObjectMeta object;
  object.size = data.size();
  std::size_t offset = 0;
  do {
    const std::size_t chunk = std::min(config_.group_payload, data.size() - offset);
    const GroupId id = next_group_++;
    GroupMeta meta;
    store_group(id, meta, data.subspan(offset, chunk));
    groups_.emplace(id, std::move(meta));
    object.groups.push_back(id);
    offset += chunk;
  } while (offset < data.size());
  directory_.emplace(name, std::move(object));
}

std::vector<Byte> ObjectStore::get(const std::string& name) const {
  const ObjectMeta& object = directory_.at(name);
  std::vector<Byte> out;
  out.reserve(object.size);
  for (const GroupId id : object.groups) {
    const GroupMeta& meta = groups_.at(id);
    std::vector<erasure::BlockRef> available;
    for (std::size_t b = 0; b < meta.homes.size(); ++b) {
      const auto* block =
          cluster_.read(meta.homes[b], BlockKey{id, static_cast<std::uint16_t>(b)});
      if (block != nullptr) {
        available.push_back(
            erasure::BlockRef{static_cast<unsigned>(b), *block});
      }
    }
    if (available.size() < config_.scheme.data_blocks) {
      throw std::runtime_error("ObjectStore: data loss in object '" + name + "'");
    }
    const auto payload = erasure::decode_object(*codec_, available, meta.payload);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

void ObjectStore::remove(const std::string& name) {
  const auto it = directory_.find(name);
  if (it == directory_.end()) return;
  for (const GroupId id : it->second.groups) {
    const auto git = groups_.find(id);
    if (git != groups_.end()) {
      drop_group(id, git->second);
      groups_.erase(git);
    }
  }
  directory_.erase(it);
}

bool ObjectStore::contains(const std::string& name) const {
  return directory_.contains(name);
}

void ObjectStore::fail_disk(DiskId d) { cluster_.fail_disk(d); }

DiskId ObjectStore::add_disks(std::size_t count) {
  const DiskId first = cluster_.add_disks(count);
  placement_->add_cluster(count, 1.0);
  return first;
}

bool ObjectStore::repair_group(GroupId id, GroupMeta& meta,
                               RecoveryReport& report) {
  std::vector<erasure::BlockRef> available;
  std::vector<unsigned> missing;
  for (std::size_t b = 0; b < meta.homes.size(); ++b) {
    const auto* block =
        cluster_.read(meta.homes[b], BlockKey{id, static_cast<std::uint16_t>(b)});
    if (block != nullptr) {
      available.push_back(erasure::BlockRef{static_cast<unsigned>(b), *block});
    } else {
      missing.push_back(static_cast<unsigned>(b));
    }
  }
  if (missing.empty()) return true;
  if (available.size() < config_.scheme.data_blocks) {
    ++report.groups_lost;
    return false;
  }

  std::vector<std::vector<Byte>> rebuilt(missing.size(),
                                         std::vector<Byte>(available[0].data.size()));
  std::vector<erasure::BlockOut> outs;
  outs.reserve(missing.size());
  for (std::size_t i = 0; i < missing.size(); ++i) {
    outs.push_back(erasure::BlockOut{missing[i], rebuilt[i]});
  }
  codec_->reconstruct(available, outs);

  for (std::size_t i = 0; i < missing.size(); ++i) {
    const DiskId target = pick_target(id, meta);
    cluster_.write(target, BlockKey{id, static_cast<std::uint16_t>(missing[i])},
                   std::move(rebuilt[i]));
    meta.homes[missing[i]] = target;
    ++report.blocks_rebuilt;
  }
  ++report.groups_repaired;
  return true;
}

ObjectStore::RecoveryReport ObjectStore::recover() {
  RecoveryReport report;
  for (auto& [id, meta] : groups_) {
    // A group needs repair when any home is dead (reads return nullptr).
    bool damaged = false;
    for (const DiskId d : meta.homes) damaged |= !cluster_.alive(d);
    if (damaged) repair_group(id, meta, report);
  }
  return report;
}

std::vector<std::string> ObjectStore::damaged_objects() const {
  std::vector<std::string> names;
  for (const auto& [name, object] : directory_) {
    for (const GroupId id : object.groups) {
      const GroupMeta& meta = groups_.at(id);
      std::size_t live = 0;
      for (std::size_t b = 0; b < meta.homes.size(); ++b) {
        if (cluster_.read(meta.homes[b],
                          BlockKey{id, static_cast<std::uint16_t>(b)}) != nullptr) {
          ++live;
        }
      }
      if (live < config_.scheme.data_blocks) {
        names.push_back(name);
        break;
      }
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace farm::store
