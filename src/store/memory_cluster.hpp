// In-memory disk cluster backing the byte-level ObjectStore.
//
// Each "disk" is a map from (group, block-index) to a byte buffer, plus a
// liveness flag.  This is the miniature real-data counterpart of the
// reliability simulator's abstract disks: the examples and tests use it to
// run the paper's full data path (encode -> place -> fail -> declustered
// rebuild) on actual bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gf/gf256.hpp"
#include "placement/placement.hpp"

namespace farm::store {

using Byte = gf::Byte;
using DiskId = placement::DiskId;
using GroupId = std::uint64_t;

/// Identity of one stored block: which group, which position in the group.
struct BlockKey {
  GroupId group;
  std::uint16_t index;

  [[nodiscard]] bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  [[nodiscard]] std::size_t operator()(const BlockKey& k) const {
    return std::hash<std::uint64_t>{}(k.group * 1000003ULL + k.index);
  }
};

class MemoryCluster {
 public:
  explicit MemoryCluster(std::size_t disks);

  [[nodiscard]] std::size_t disk_count() const { return disks_.size(); }
  [[nodiscard]] std::size_t live_disks() const;
  [[nodiscard]] bool alive(DiskId d) const { return disks_.at(d).alive; }

  /// Marks a disk failed; its contents become unreadable (and are freed).
  void fail_disk(DiskId d);
  /// Appends `count` fresh disks; returns the first new id.
  DiskId add_disks(std::size_t count);

  /// Stores a block; throws std::logic_error on a dead disk.
  void write(DiskId d, BlockKey key, std::vector<Byte> data);
  /// Reads a block; nullptr when the disk is dead or never held the key.
  [[nodiscard]] const std::vector<Byte>* read(DiskId d, BlockKey key) const;
  /// Drops a block if present (no-op on dead disks).
  void erase(DiskId d, BlockKey key);

  [[nodiscard]] std::size_t blocks_on(DiskId d) const;
  [[nodiscard]] std::size_t bytes_on(DiskId d) const;

 private:
  struct Disk {
    bool alive = true;
    std::size_t bytes = 0;
    std::unordered_map<BlockKey, std::vector<Byte>, BlockKeyHash> blocks;
  };
  std::vector<Disk> disks_;
};

}  // namespace farm::store
