// Arithmetic over GF(2^8) with the AES/Rijndael reduction polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11d is the usual RAID choice; we use 0x11d).
//
// Multiplication uses log/exp tables built once at startup.  This is the
// foundation of the Reed-Solomon codec (paper §2.2: "generalized
// Reed-Solomon schemes" as the m/n erasure code).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace farm::gf {

using Byte = std::uint8_t;

/// The reduction polynomial (x^8 + x^4 + x^3 + x^2 + 1), the standard
/// generator for storage Reed-Solomon codes.
inline constexpr unsigned kPoly = 0x11d;

/// Singleton table set for GF(2^8).
class GF256 {
 public:
  static const GF256& instance();

  [[nodiscard]] Byte add(Byte a, Byte b) const { return a ^ b; }
  [[nodiscard]] Byte sub(Byte a, Byte b) const { return a ^ b; }

  [[nodiscard]] Byte mul(Byte a, Byte b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<unsigned>(log_[a]) + log_[b]];
  }

  /// a / b with b != 0; division by zero is a precondition violation and
  /// throws std::domain_error.
  [[nodiscard]] Byte div(Byte a, Byte b) const;

  /// Multiplicative inverse of a != 0.
  [[nodiscard]] Byte inv(Byte a) const;

  /// a raised to integer power n (n >= 0); 0^0 == 1 by convention.
  [[nodiscard]] Byte pow(Byte a, unsigned n) const;

  /// The generator element (2) raised to n — handy for Vandermonde rows.
  [[nodiscard]] Byte exp(unsigned n) const { return exp_[n % 255]; }
  /// Discrete log base 2 of a != 0.
  [[nodiscard]] unsigned log(Byte a) const;

  /// result[i] ^= c * src[i] over a span — the codec inner loop.
  void mul_acc(std::span<Byte> result, std::span<const Byte> src, Byte c) const;
  /// result[i] = c * src[i].
  void mul_set(std::span<Byte> result, std::span<const Byte> src, Byte c) const;

 private:
  GF256();
  std::array<Byte, 512> exp_{};   // doubled to skip the mod-255 in mul()
  std::array<Byte, 256> log_{};   // log_[0] unused
};

}  // namespace farm::gf
