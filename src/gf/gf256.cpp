#include "gf/gf256.hpp"

#include <stdexcept>

namespace farm::gf {

const GF256& GF256::instance() {
  static const GF256 tables;
  return tables;
}

GF256::GF256() {
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<Byte>(x);
    log_[x] = static_cast<Byte>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
}

Byte GF256::div(Byte a, Byte b) const {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  return exp_[static_cast<unsigned>(log_[a]) + 255 - log_[b]];
}

Byte GF256::inv(Byte a) const {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  return exp_[255 - log_[a]];
}

Byte GF256::pow(Byte a, unsigned n) const {
  if (n == 0) return 1;
  if (a == 0) return 0;
  return exp_[(static_cast<unsigned>(log_[a]) * n) % 255];
}

unsigned GF256::log(Byte a) const {
  if (a == 0) throw std::domain_error("GF256: log of zero");
  return log_[a];
}

void GF256::mul_acc(std::span<Byte> result, std::span<const Byte> src, Byte c) const {
  if (result.size() != src.size()) {
    throw std::invalid_argument("GF256::mul_acc: size mismatch");
  }
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < src.size(); ++i) result[i] ^= src[i];
    return;
  }
  const unsigned lc = log_[c];
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Byte s = src[i];
    if (s != 0) result[i] ^= exp_[lc + log_[s]];
  }
}

void GF256::mul_set(std::span<Byte> result, std::span<const Byte> src, Byte c) const {
  if (result.size() != src.size()) {
    throw std::invalid_argument("GF256::mul_set: size mismatch");
  }
  if (c == 0) {
    for (auto& b : result) b = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < src.size(); ++i) result[i] = src[i];
    return;
  }
  const unsigned lc = log_[c];
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Byte s = src[i];
    result[i] = s == 0 ? Byte{0} : exp_[lc + log_[s]];
  }
}

}  // namespace farm::gf
