// Dense matrices over GF(2^8) and the linear algebra the Reed-Solomon codec
// needs: multiplication, Gauss-Jordan inversion, and Cauchy/Vandermonde
// constructions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/gf256.hpp"

namespace farm::gf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] Byte& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] Byte at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<const Byte> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Cauchy matrix C[i][j] = 1 / (x_i + y_j); every square submatrix is
  /// invertible, which is exactly the MDS property an m/n code needs.
  [[nodiscard]] static Matrix cauchy(std::span<const Byte> xs, std::span<const Byte> ys);

  /// Vandermonde matrix V[i][j] = x_i ^ j.
  [[nodiscard]] static Matrix vandermonde(std::span<const Byte> xs, std::size_t cols);

  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Gauss-Jordan inverse; throws std::domain_error if singular.
  [[nodiscard]] Matrix inverse() const;

  /// Rows `keep` of this matrix, in the given order.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> keep) const;

  /// Multiplies this (rows x cols) by a block of `cols` equal-length byte
  /// buffers, producing `rows` outputs.  This is the encode/decode kernel.
  void apply(std::span<const std::span<const Byte>> inputs,
             std::span<const std::span<Byte>> outputs) const;

  [[nodiscard]] bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Byte> data_;
};

}  // namespace farm::gf
