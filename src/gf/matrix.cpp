#include "gf/matrix.hpp"

#include <stdexcept>

namespace farm::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::cauchy(std::span<const Byte> xs, std::span<const Byte> ys) {
  const auto& gf = GF256::instance();
  Matrix m(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < ys.size(); ++j) {
      const Byte denom = gf.add(xs[i], ys[j]);
      if (denom == 0) {
        throw std::invalid_argument("cauchy: xs and ys must be disjoint");
      }
      m.at(i, j) = gf.inv(denom);
    }
  }
  return m;
}

Matrix Matrix::vandermonde(std::span<const Byte> xs, std::size_t cols) {
  const auto& gf = GF256::instance();
  Matrix m(xs.size(), cols);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.at(i, j) = gf.pow(xs[i], static_cast<unsigned>(j));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("multiply: shape mismatch");
  const auto& gf = GF256::instance();
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Byte a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) ^= gf.mul(a, rhs.at(k, j));
      }
    }
  }
  return out;
}

Matrix Matrix::inverse() const {
  if (rows_ != cols_) throw std::invalid_argument("inverse: matrix not square");
  const auto& gf = GF256::instance();
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw std::domain_error("inverse: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Normalize the pivot row.
    const Byte scale = gf.inv(work.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      work.at(col, j) = gf.mul(work.at(col, j), scale);
      inv.at(col, j) = gf.mul(inv.at(col, j), scale);
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Byte factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) ^= gf.mul(factor, work.at(col, j));
        inv.at(r, j) ^= gf.mul(factor, inv.at(col, j));
      }
    }
  }
  return inv;
}

Matrix Matrix::select_rows(std::span<const std::size_t> keep) const {
  Matrix out(keep.size(), cols_);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= rows_) throw std::out_of_range("select_rows: bad row index");
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(keep[i], j);
  }
  return out;
}

void Matrix::apply(std::span<const std::span<const Byte>> inputs,
                   std::span<const std::span<Byte>> outputs) const {
  if (inputs.size() != cols_ || outputs.size() != rows_) {
    throw std::invalid_argument("apply: wrong number of buffers");
  }
  const auto& gf = GF256::instance();
  for (std::size_t r = 0; r < rows_; ++r) {
    bool first = true;
    for (std::size_t c = 0; c < cols_; ++c) {
      const Byte coeff = at(r, c);
      if (first) {
        gf.mul_set(outputs[r], inputs[c], coeff);
        first = false;
      } else {
        gf.mul_acc(outputs[r], inputs[c], coeff);
      }
    }
  }
}

}  // namespace farm::gf
