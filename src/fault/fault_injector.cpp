#include "fault/fault_injector.hpp"

#include <algorithm>
#include <vector>

#include "stress/buggify.hpp"
#include "util/seed_lanes.hpp"

namespace farm::fault {

using core::DiskId;

namespace {
/// Buggify "detector.slip_extra": extra whole heartbeat intervals a
/// detection slips on top of the modelled false-negative draw.
constexpr std::uint64_t kSlipExtraMaxBeats = 8;
}  // namespace

FaultInjector::FaultInjector(core::StorageSystem& system, sim::Simulator& sim,
                             core::Metrics& metrics,
                             core::RecoveryPolicy& policy, std::uint64_t seed)
    : system_(system),
      sim_(sim),
      metrics_(metrics),
      policy_(policy),
      config_(system.config().fault),
      mission_(system.config().mission_time),
      burst_rng_(util::SeedSequence{seed}.stream(util::lanes::kFaultBurst)),
      fail_slow_rng_(util::SeedSequence{seed}.stream(util::lanes::kFaultFailSlow)),
      detect_rng_(util::SeedSequence{seed}.stream(util::lanes::kFaultDetect)),
      fp_rng_(util::SeedSequence{seed}.stream(util::lanes::kFaultFalsePositive)) {}

void FaultInjector::start() {
  if (config_.fail_slow.enabled) {
    const auto slots = static_cast<DiskId>(system_.disk_slots());
    for (DiskId d = 0; d < slots; ++d) sample_fail_slow_onset(d);
  }
  if (config_.burst.enabled) schedule_next_shock();
  if (config_.detector.enabled &&
      config_.detector.false_positive_mtbf.value() > 0.0) {
    schedule_next_false_positive();
  }
}

void FaultInjector::on_disk_added(DiskId id) {
  if (config_.fail_slow.enabled) sample_fail_slow_onset(id);
}

// --- fail-slow --------------------------------------------------------------

void FaultInjector::sample_fail_slow_onset(DiskId id) {
  // One exponential draw per disk, consumed unconditionally so the lane
  // stays aligned across configurations that only change other knobs.
  const double wait =
      fail_slow_rng_.exponential(1.0 / config_.fail_slow.onset_mtbf.value());
  const disk::Disk& d = system_.disk_at(id);
  const util::Seconds onset = d.birth() + util::Seconds{wait};
  if (onset > mission_) return;
  if (onset >= d.fails_at()) return;  // dies fail-stop before slowing down
  sim_.schedule_at(onset, [this, id] { begin_fail_slow(id); });
}

void FaultInjector::begin_fail_slow(DiskId id) {
  disk::Disk& d = system_.disk_at(id);
  if (!d.alive()) return;
  if (d.speed_factor() < 1.0) return;  // already degraded
  d.set_speed_factor(config_.fail_slow.bandwidth_fraction);
  metrics_.record_fail_slow_onset();
  metrics_.trace(sim_.now().value(), "fail_slow", id);
  if (config_.fail_slow.enabled && config_.fail_slow.smart_eviction) {
    sim_.schedule_in(config_.fail_slow.eviction_delay, [this, id] {
      if (!system_.disk_at(id).alive()) return;
      metrics_.record_proactive_eviction();
      metrics_.trace(sim_.now().value(), "evicted", id);
      fail_disk_(id);
    });
  }
}

// --- correlated bursts ------------------------------------------------------

void FaultInjector::schedule_next_shock() {
  const double wait =
      burst_rng_.exponential(1.0 / config_.burst.shock_mtbf.value());
  sim_.schedule_in(util::Seconds{wait}, [this] {
    fire_shock();
    schedule_next_shock();
  });
}

void FaultInjector::fire_shock() {
  // Epicenter: a live disk, by bounded rejection sampling — a mostly-dead
  // cluster produces duds rather than spinning.
  DiskId epicenter = core::kNoDisk;
  for (int tries = 0; tries < 32; ++tries) {
    const auto d = static_cast<DiskId>(burst_rng_.below(system_.disk_slots()));
    if (system_.disk_at(d).alive()) {
      epicenter = d;
      break;
    }
  }
  if (epicenter == core::kNoDisk) return;

  // Shock domain: the placement enclosure when failure domains are on (the
  // burst then composes with rack-aware placement, which caps the per-group
  // damage at one block), else a span of id-adjacent disks.
  std::vector<DiskId> members;
  if (system_.config().domains.enabled) {
    members = system_.live_disks_in_domain(system_.domain_of(epicenter));
  } else {
    const std::size_t span = config_.burst.span;
    const std::size_t lo = (epicenter / span) * span;
    const std::size_t hi = std::min(lo + span, system_.disk_slots());
    for (std::size_t d = lo; d < hi; ++d) {
      if (system_.disk_at(static_cast<DiskId>(d)).alive()) {
        members.push_back(static_cast<DiskId>(d));
      }
    }
  }

  std::uint64_t killed = 0;
  std::uint64_t degraded = 0;
  for (const DiskId d : members) {
    const double u = burst_rng_.uniform();
    if (u < config_.burst.kill_fraction) {
      ++killed;
      // The shock cooks drives over its window, not in one instant, so the
      // recovery machinery sees a tight burst of distinct failure events.
      const double jitter = burst_rng_.uniform() * config_.burst.window.value();
      sim_.schedule_in(util::Seconds{jitter}, [this, d] {
        if (system_.disk_at(d).alive()) fail_disk_(d);
      });
    } else if (u < config_.burst.kill_fraction + config_.burst.degrade_fraction) {
      ++degraded;
      begin_fail_slow(d);
    }
  }
  metrics_.record_shock(killed, degraded);
  metrics_.trace(sim_.now().value(), "shock", epicenter);
}

// --- imperfect detection ----------------------------------------------------

util::Seconds FaultInjector::detection_time(const core::FailureDetector& det,
                                            util::Seconds failed_at) {
  util::Seconds t = det.detection_time(failed_at);
  const double p =
      config_.detector.enabled ? config_.detector.false_negative_rate : 0.0;
  if (p > 0.0 && det.kind() == core::DetectorKind::kHeartbeat) {
    const unsigned k = missed_beats(detect_rng_.uniform_pos(), p);
    if (k > 0) {
      const double slip =
          static_cast<double>(k) * det.heartbeat_interval().value();
      metrics_.record_detection_slip(slip);
      t = t + util::Seconds{slip};
    }
  }
  if (config_.detector.enabled && det.kind() == core::DetectorKind::kHeartbeat &&
      BUGGIFY("detector.slip_extra")) {
    // The monitor itself hiccups: the detection slips extra whole heartbeat
    // intervals beyond the modelled missed-beat draw.
    const double beats = static_cast<double>(
        1 + stress::BuggifyState::current()->pick("detector.slip_extra",
                                                  kSlipExtraMaxBeats));
    const double slip = beats * det.heartbeat_interval().value();
    metrics_.record_detection_slip(slip);
    t = t + util::Seconds{slip};
  }
  return t;
}

void FaultInjector::schedule_next_false_positive() {
  // Constant cluster-wide accusation rate (population / per-disk MTBF),
  // thinned in fire_false_positive by skipping dead picks.
  const double rate = static_cast<double>(system_.initial_disk_count()) /
                      config_.detector.false_positive_mtbf.value();
  const double wait = fp_rng_.exponential(rate);
  sim_.schedule_in(util::Seconds{wait}, [this] {
    fire_false_positive();
    schedule_next_false_positive();
  });
}

void FaultInjector::fire_false_positive() {
  const auto d = static_cast<DiskId>(fp_rng_.below(system_.disk_slots()));
  if (!system_.disk_at(d).alive()) return;  // accusing the dead is moot
  accuse(d);
  if (BUGGIFY("detector.flap_burst")) {
    // The accusation flaps across the monitor: a second disk (from the
    // point's own lane, so the base accusation stream is undisturbed) is
    // accused in the same breath.
    const auto extra = static_cast<DiskId>(
        stress::BuggifyState::current()->pick("detector.flap_burst",
                                              system_.disk_slots()));
    if (extra != d && system_.disk_at(extra).alive()) accuse(extra);
  }
}

void FaultInjector::accuse(DiskId d) {
  metrics_.record_spurious_detection();
  metrics_.trace(sim_.now().value(), "false_positive", d);
  policy_.begin_spurious_rebuilds(d);
  sim_.schedule_in(config_.detector.false_positive_grace, [this, d] {
    // If the accused disk really died during the grace period the policy
    // already dissolved its spurious rebuilds; this is then a no-op.
    policy_.end_spurious_rebuilds(d, /*disk_died=*/false);
  });
}

}  // namespace farm::fault
