// Unified fault-injection driver (see fault_config.hpp for the model).
//
// One injector per ReliabilitySimulator, constructed only when
// FaultConfig::any_enabled() — a disabled fault layer costs nothing and, by
// construction, cannot perturb the simulation's RNG streams or event
// schedule.  Each fault class draws from its own seed lane so enabling one
// never reshuffles another's schedule.
//
// The injector never kills disks directly: it routes every death through
// the simulator's regular failure path (`set_fail_disk`), so burst kills
// and proactive evictions get the same detection/rebuild treatment as
// natural failures.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/fault_config.hpp"
#include "farm/detector.hpp"
#include "farm/metrics.hpp"
#include "farm/recovery.hpp"
#include "farm/storage_system.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace farm::fault {

class FaultInjector {
 public:
  FaultInjector(core::StorageSystem& system, sim::Simulator& sim,
                core::Metrics& metrics, core::RecoveryPolicy& policy,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the disk-death route (ReliabilitySimulator's failure event,
  /// which is idempotent for already-dead disks).  Must be set before
  /// start().
  void set_fail_disk(std::function<void(core::DiskId)> fn) {
    fail_disk_ = std::move(fn);
  }

  /// Samples fail-slow onsets for the initial population and schedules the
  /// shock / false-positive processes.  Call once, at t = 0.
  void start();

  /// Hook for disks created mid-mission (dedicated spares, replacement
  /// batches): they are as exposed to fail-slow onset as the originals.
  void on_disk_added(core::DiskId id);

  /// Detection-time hook: the base detector's latency plus any
  /// false-negative slip (whole heartbeat intervals missed, geometric in
  /// the per-beat miss rate).  Consumes exactly one draw from the detector
  /// lane per call, keeping sweep points with different miss rates aligned
  /// under common random numbers.
  [[nodiscard]] util::Seconds detection_time(const core::FailureDetector& det,
                                             util::Seconds failed_at);

 private:
  void schedule_next_shock();
  void fire_shock();
  void schedule_next_false_positive();
  void fire_false_positive();
  void accuse(core::DiskId d);
  void sample_fail_slow_onset(core::DiskId id);
  void begin_fail_slow(core::DiskId id);

  core::StorageSystem& system_;
  sim::Simulator& sim_;
  core::Metrics& metrics_;
  core::RecoveryPolicy& policy_;
  const FaultConfig& config_;
  util::Seconds mission_;
  std::function<void(core::DiskId)> fail_disk_;
  // Independent per-class lanes off the injector seed.
  util::Xoshiro256 burst_rng_;
  util::Xoshiro256 fail_slow_rng_;
  util::Xoshiro256 detect_rng_;
  util::Xoshiro256 fp_rng_;
};

}  // namespace farm::fault
