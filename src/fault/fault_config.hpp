// Fault-injection configuration (extension beyond the paper).
//
// The paper's reliability model assumes clean fail-stop disks, a perfectly
// accurate detector (§3.3 models only its latency), and rebuilds that always
// run to completion.  Real petabyte clusters fail in messier ways; each
// sub-struct below relaxes one of those assumptions:
//   * BurstConfig       — correlated failure bursts (a power/cooling shock
//                         kills or degrades several disks in one enclosure
//                         within a short window),
//   * FailSlowConfig    — fail-slow disks that keep serving at a fraction of
//                         their sustained bandwidth,
//   * DetectorFaultConfig — heartbeat false negatives (missed beats stretch
//                         the window of vulnerability) and false positives
//                         (spurious rebuilds that must be rolled back),
//   * InterruptedRebuildConfig — a reconstruction source dying mid-rebuild
//                         restarts the transfer with bounded backoff.
//
// Everything defaults to off; a fully disabled FaultConfig draws no random
// numbers and schedules no events, so fault-free output stays bit-identical
// to builds predating src/fault (pinned by the golden regression).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "util/units.hpp"

namespace farm::fault {

/// Correlated failure bursts: a cluster-wide Poisson shock process; each
/// shock picks one failure domain (the placement enclosure when
/// DomainConfig is enabled, else `span` contiguous disk ids) and fails or
/// degrades a fraction of its live disks within `window`.
struct BurstConfig {
  bool enabled = false;
  /// Mean time between shocks, cluster-wide.
  util::Seconds shock_mtbf = util::years(1);
  /// Shock-domain width when placement failure domains are off.
  std::size_t span = 32;
  /// Fraction of the domain's live disks killed outright per shock.
  double kill_fraction = 0.25;
  /// Fraction degraded to fail-slow instead of killed (their bandwidth
  /// drops to FailSlowConfig::bandwidth_fraction).
  double degrade_fraction = 0.25;
  /// Kills spread uniformly over this window after the shock (a cooling
  /// failure cooks drives over minutes, not all in one instant).
  util::Seconds window = util::minutes(10);
};

/// Fail-slow disks: each disk independently degrades with the given onset
/// hazard and then serves rebuild streams and client queues at
/// `bandwidth_fraction` of its sustained bandwidth.
struct FailSlowConfig {
  bool enabled = false;
  /// Per-disk mean time to fail-slow onset (exponential).
  util::Seconds onset_mtbf = util::hours(1.0e6);
  /// Remaining fraction of sustained bandwidth once slow, in (0, 1].
  double bandwidth_fraction = 0.25;
  /// SMART-triggered proactive eviction: a slow disk is administratively
  /// failed `eviction_delay` after onset, trading one extra rebuild for
  /// restored bandwidth.
  bool smart_eviction = false;
  util::Seconds eviction_delay = util::hours(6);
};

/// Imperfect failure detection on top of the §3.3 latency model.
struct DetectorFaultConfig {
  bool enabled = false;
  /// Probability the monitor misses any given heartbeat (requires
  /// DetectorKind::kHeartbeat); each consecutive miss stretches detection
  /// by one heartbeat interval.
  double false_negative_rate = 0.0;
  /// Mean time between false positives per disk (0 disables).  A false
  /// positive launches spurious rebuilds of a live disk's blocks.
  util::Seconds false_positive_mtbf{0.0};
  /// Time until the falsely accused disk proves alive and the spurious
  /// rebuilds are cancelled with their state rolled back.
  util::Seconds false_positive_grace = util::minutes(30);
};

/// Interrupted rebuilds: when a reconstruction source dies mid-transfer the
/// rebuild restarts (from scratch — block transfers are not checkpointed)
/// after an exponential backoff instead of silently completing.
struct InterruptedRebuildConfig {
  bool enabled = false;
  util::Seconds retry_delay = util::minutes(1);
  util::Seconds retry_delay_cap = util::hours(1);
};

struct FaultConfig {
  BurstConfig burst;
  FailSlowConfig fail_slow;
  DetectorFaultConfig detector;
  InterruptedRebuildConfig interrupted;

  /// True when any fault class is switched on — the reliability simulator
  /// only constructs a FaultInjector (and only then consumes any RNG or
  /// schedules any event) when this holds.
  [[nodiscard]] bool any_enabled() const {
    return burst.enabled || fail_slow.enabled || detector.enabled ||
           interrupted.enabled;
  }

  /// True when disk speed factors can drop below 1.0 (fail-slow onsets or
  /// burst degradation) — gates the derating math on rebuild drain clocks.
  [[nodiscard]] bool affects_speed() const {
    return fail_slow.enabled || (burst.enabled && burst.degrade_fraction > 0.0);
  }

  /// Throws std::invalid_argument on inconsistent parameters.  The
  /// detector-kind dependency (false negatives need heartbeats) is checked
  /// by SystemConfig::validate, which knows the detector.
  void validate() const {
    auto fail = [](const char* what) { throw std::invalid_argument(what); };
    if (burst.enabled) {
      if (!(burst.shock_mtbf.value() > 0.0)) fail("fault: shock_mtbf must be positive");
      if (burst.span == 0) fail("fault: burst span must be >= 1");
      if (burst.kill_fraction < 0.0 || burst.degrade_fraction < 0.0 ||
          burst.kill_fraction + burst.degrade_fraction > 1.0) {
        fail("fault: burst kill + degrade fractions must be in [0, 1]");
      }
      if (!(burst.window.value() > 0.0)) fail("fault: burst window must be positive");
    }
    if (fail_slow.enabled || (burst.enabled && burst.degrade_fraction > 0.0)) {
      if (!(fail_slow.bandwidth_fraction > 0.0) ||
          fail_slow.bandwidth_fraction > 1.0) {
        fail("fault: fail-slow bandwidth_fraction must be in (0, 1]");
      }
    }
    if (fail_slow.enabled) {
      if (!(fail_slow.onset_mtbf.value() > 0.0)) {
        fail("fault: fail-slow onset_mtbf must be positive");
      }
      if (fail_slow.smart_eviction && fail_slow.eviction_delay.value() < 0.0) {
        fail("fault: negative eviction_delay");
      }
    }
    if (detector.enabled) {
      // Strictly below 1: rate 1 would mean the disk is never detected.
      if (detector.false_negative_rate < 0.0 ||
          detector.false_negative_rate >= 1.0) {
        fail("fault: false_negative_rate must be in [0, 1)");
      }
      if (detector.false_positive_mtbf.value() < 0.0) {
        fail("fault: negative false_positive_mtbf");
      }
      if (detector.false_positive_mtbf.value() > 0.0 &&
          !(detector.false_positive_grace.value() > 0.0)) {
        fail("fault: false_positive_grace must be positive");
      }
    }
    if (interrupted.enabled) {
      if (!(interrupted.retry_delay.value() > 0.0) ||
          interrupted.retry_delay_cap < interrupted.retry_delay) {
        fail("fault: retry_delay must be positive and <= retry_delay_cap");
      }
    }
  }
};

/// Consecutive heartbeats the monitor misses given a uniform draw
/// u in (0, 1) and per-beat miss probability p, by inverse-CDF sampling of
/// the geometric law P(K >= j) = p^j.  For a fixed u the result is monotone
/// nondecreasing in p, which is what makes the detector-quality sweep's
/// window-of-vulnerability trend deterministic under common random numbers
/// (each sweep point replays the same u sequence).
[[nodiscard]] inline unsigned missed_beats(double u, double p) {
  constexpr unsigned kMaxMissedBeats = 4096;  // ~2 weeks of 5-min beats
  if (p <= 0.0 || u >= 1.0) return 0;
  if (p >= 1.0 || u <= 0.0) return kMaxMissedBeats;
  const double k = std::floor(std::log(u) / std::log(p));
  return static_cast<unsigned>(
      std::min(k, static_cast<double>(kMaxMissedBeats)));
}

}  // namespace farm::fault
