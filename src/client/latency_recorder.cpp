#include "client/latency_recorder.hpp"

#include <stdexcept>

namespace farm::client {

std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kHealthy:
      return "healthy";
    case Phase::kDegraded:
      return "degraded";
    case Phase::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

util::LogHistogram make_latency_histogram() {
  // 0.1 ms .. 1000 s spans 7 decades; 12 bins per decade.
  return util::LogHistogram(1e-4, 1e3, 84);
}

LatencyRecorder::LatencyRecorder(util::Seconds slo) : slo_(slo.value()) {
  if (!(slo_ > 0.0)) {
    throw std::invalid_argument("LatencyRecorder: slo must be positive");
  }
  latency_.reserve(kPhaseCount);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    latency_.push_back(make_latency_histogram());
  }
}

void LatencyRecorder::record(Phase phase, double latency_sec) {
  const auto idx = static_cast<std::size_t>(phase);
  latency_[idx].add(latency_sec);
  if (latency_sec > slo_) ++violations_[idx];
}

const util::LogHistogram& LatencyRecorder::histogram(Phase p) const {
  return latency_[static_cast<std::size_t>(p)];
}

std::uint64_t LatencyRecorder::count(Phase p) const {
  return latency_[static_cast<std::size_t>(p)].total();
}

std::uint64_t LatencyRecorder::slo_violations(Phase p) const {
  return violations_[static_cast<std::size_t>(p)];
}

void ClientAggregate::merge_trial(const ClientSummary& s) {
  if (!s.active) return;
  if (!active) {
    active = true;
    latency.reserve(kPhaseCount);
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      latency.push_back(make_latency_histogram());
    }
  }
  sum_requests_ += static_cast<double>(s.requests);
  sum_degraded_ += static_cast<double>(s.degraded_reads);
  sum_unavailable_ += static_cast<double>(s.unavailable_requests);
  sum_demand_ += s.mean_measured_demand;
  sum_degraded_user_bytes_ += s.degraded_user_bytes;
  sum_reconstruction_bytes_ += s.reconstruction_disk_bytes;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_counts[i] += s.phase_counts[i];
    slo_violations[i] += s.slo_violations[i];
    if (i < s.latency.size()) latency[i].merge(s.latency[i]);
  }
}

void ClientAggregate::finalize(std::size_t trials) {
  if (!active || trials == 0) return;
  const double n = static_cast<double>(trials);
  mean_requests = sum_requests_ / n;
  mean_degraded_reads = sum_degraded_ / n;
  mean_unavailable_requests = sum_unavailable_ / n;
  mean_measured_demand = sum_demand_ / n;
  read_amplification = sum_degraded_user_bytes_ > 0.0
                           ? sum_reconstruction_bytes_ / sum_degraded_user_bytes_
                           : 0.0;
}

double ClientAggregate::quantile(Phase p, double q) const {
  if (!active) return 0.0;
  return latency[static_cast<std::size_t>(p)].quantile(q);
}

double ClientAggregate::overall_quantile(double q) const {
  if (!active) return 0.0;
  util::LogHistogram pooled = make_latency_histogram();
  for (const auto& h : latency) pooled.merge(h);
  return pooled.quantile(q);
}

double ClientAggregate::slo_violation_fraction(Phase p) const {
  const auto idx = static_cast<std::size_t>(p);
  if (phase_counts[idx] == 0) return 0.0;
  return static_cast<double>(slo_violations[idx]) /
         static_cast<double>(phase_counts[idx]);
}

}  // namespace farm::client
