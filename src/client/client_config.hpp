// Foreground client-I/O configuration (extension beyond the paper).
//
// The paper's §2.4 workload model is a diurnal cosine standing in for "user
// requests"; this config describes *actual* client traffic so the simulator
// can answer the question the recovery-bandwidth tradeoff exists for: what
// do users experience while the system is rebuilding?  Requests are
// addressed to redundancy groups through the existing placement layer,
// queue on per-disk FIFO service queues, and — when a group has a failed
// disk — take the degraded-read path, fanning k reconstruction reads out
// across the surviving disks (Sathiamoorthy et al.'s k-fold read
// amplification; Rashmi et al. measured this traffic dominating warehouse
// clusters).
#pragma once

#include "util/units.hpp"

namespace farm::client {

enum class ArrivalKind {
  kOpenPoisson,  // open loop: Poisson arrivals at a configured rate
  kClosedLoop,   // closed loop: fixed streams, think time between requests
};

enum class SizeDist {
  kFixed,      // every request moves exactly `request_size` bytes
  kLognormal,  // lognormal with median `request_size` (heavy-tailed objects)
};

struct ClientConfig {
  /// Off (default): no client events at all — the reliability-only
  /// simulation stays bit-identical to builds predating src/client.
  bool enabled = false;

  ArrivalKind arrivals = ArrivalKind::kOpenPoisson;

  /// Open loop: mean arrival rate per *live* disk (req/s); the system-wide
  /// rate is this times the live-disk count, so offered load tracks
  /// cluster size and survives scaling.
  double requests_per_disk_per_sec = 2.0;

  /// Closed loop: concurrent client streams per initial disk, and the
  /// think time each stream waits between a completion and its next
  /// request.
  double streams_per_disk = 1.0;
  util::Seconds think_time = util::seconds(0.1);

  /// Diurnal modulation of the open-loop rate: the instantaneous rate is
  /// base * (1 - amplitude*cos(2*pi*t/period)), the same trough-at-t0 shape
  /// as WorkloadConfig's cosine.  0 (default) = flat Poisson.
  double diurnal_amplitude = 0.0;
  util::Seconds diurnal_period = util::days(1);

  /// Fraction of requests that are reads (writes fan out over the group's
  /// live blocks).
  double read_fraction = 0.9;

  SizeDist size_dist = SizeDist::kFixed;
  /// Fixed size, or the lognormal median.
  util::Bytes request_size = util::megabytes(4);
  /// kLognormal only: standard deviation in ln-space.
  double lognormal_sigma = 1.0;

  /// Latency service-level objective; the recorder reports the fraction of
  /// requests exceeding it per phase (healthy / degraded / rebuilding).
  util::Seconds slo = util::seconds(0.25);

  /// Cadence at which measured disk-time demand is sampled for
  /// WorkloadKind::kGenerated (recovery gets what the *measured* client
  /// load leaves, instead of the cosine approximation).
  util::Seconds demand_sample_interval = util::seconds(60);

  /// Throws std::invalid_argument on inconsistent parameters.  Only
  /// meaningful when enabled.
  void validate() const;
};

}  // namespace farm::client
