#include "client/client_subsystem.hpp"

#include <algorithm>
#include <cmath>

#include "stress/buggify.hpp"

namespace farm::client {

namespace {

/// Client traffic keeps at least this share of a disk's transfer rate even
/// when rebuild streams have the disk saturated — the mirror image of
/// WorkloadConfig::min_recovery_fraction, which protects recovery from
/// client load.  Neither side can starve the other completely.
constexpr double kMinClientShare = 0.1;

/// Salt separating the block-address stream from the arrival stream.
constexpr std::uint64_t kAddrSalt = 0x636c69656e743aULL;  // "client:"

/// Buggify magnitudes: "client.queue_hiccup" derates one request's disk
/// share to a quarter; "client.arrival_burst" compresses an open-arrival
/// gap to a tenth, bunching requests.
constexpr double kQueueHiccupFactor = 0.25;
constexpr double kArrivalBurstFactor = 0.1;

}  // namespace

ClientSubsystem::ClientSubsystem(core::StorageSystem& system,
                                 sim::Simulator& sim,
                                 core::RecoveryPolicy& policy,
                                 std::uint64_t seed)
    : system_(system),
      sim_(sim),
      policy_(policy),
      config_(system.config().client),
      generator_(config_, seed, system.group_count()),
      addr_rng_(util::hash_combine(seed, kAddrSalt)),
      recorder_(config_.slo),
      mission_end_sec_(system.config().mission_time.value()) {
  queues_.reserve(system_.disk_slots());
  for (std::size_t d = 0; d < system_.disk_slots(); ++d) {
    queues_.emplace_back(system_.config().disk);
  }
}

void ClientSubsystem::start() {
  if (config_.arrivals == ArrivalKind::kOpenPoisson) {
    schedule_open_arrival();
  } else {
    const auto streams = static_cast<std::size_t>(std::llround(
        config_.streams_per_disk *
        static_cast<double>(system_.initial_disk_count())));
    for (std::size_t s = 0; s < std::max<std::size_t>(streams, 1); ++s) {
      // Stagger launches by one think time so streams do not arrive in
      // lockstep at t=0.
      stream_next(sim_.now().value() + generator_.next_think_time().value());
    }
  }
  sim_.schedule_in(config_.demand_sample_interval,
                   [this] { sample_demand(); });
}

void ClientSubsystem::schedule_open_arrival() {
  util::Seconds gap =
      generator_.next_interarrival(sim_.now(), system_.live_disks());
  if (!std::isfinite(gap.value())) return;
  if (BUGGIFY("client.arrival_burst")) {
    gap = util::Seconds{gap.value() * kArrivalBurstFactor};
  }
  const double at = sim_.now().value() + gap.value();
  if (at > mission_end_sec_) return;  // the mission ends before it arrives
  sim_.schedule_in(gap, [this] {
    serve_and_record(generator_.next_request());
    schedule_open_arrival();
  });
}

void ClientSubsystem::stream_next(double at_sec) {
  if (at_sec > mission_end_sec_) return;  // the stream retires
  sim_.schedule_at(util::Seconds{at_sec}, [this] {
    serve_and_record(generator_.next_request());
    // The stream thinks after its request *completes*, not after it is
    // issued — that is what closes the loop: a slow disk slows the stream.
    stream_next(last_completion_sec_ + generator_.next_think_time().value());
  });
}

void ClientSubsystem::serve_and_record(const Request& r) {
  const Outcome o = serve(r);
  ++requests_;
  if (r.read) {
    ++reads_;
  } else {
    ++writes_;
  }
  const double now = sim_.now().value();
  last_completion_sec_ = now + (o.served ? o.latency_sec : 0.0);
  if (!o.served) {
    ++unavailable_;
    return;
  }
  Phase phase = Phase::kHealthy;
  if (o.degraded) {
    phase = Phase::kDegraded;
  } else if (policy_.active_rebuilds() > 0) {
    phase = Phase::kRebuilding;
  }
  recorder_.record(phase, o.latency_sec);
}

ClientSubsystem::Outcome ClientSubsystem::serve(const Request& r) {
  return r.read ? serve_read(r) : serve_write(r);
}

ClientSubsystem::Outcome ClientSubsystem::serve_read(const Request& r) {
  Outcome o;
  const auto g = static_cast<core::GroupIndex>(r.group);
  if (system_.state(g).dead) return o;  // data already lost; not served

  const unsigned m = system_.config().scheme.data_blocks;
  const unsigned n = system_.blocks_per_group();
  const auto b = static_cast<core::BlockIndex>(addr_rng_.below(m));
  const double now = sim_.now().value();
  user_read_bytes_ += r.bytes.value();

  const DiskId home = system_.home(g, b);
  if (home != core::kNoDisk && system_.disk_at(home).alive()) {
    // Healthy read: served by the block's home disk.
    const double done = enqueue_on(home, r.bytes) +
                        net_delay(home, home, r.bytes);
    o.served = true;
    o.latency_sec = done - now;
    return o;
  }

  // Degraded read: the home is failed but the group is alive, so at least
  // m other blocks survive.  Reconstructing r.bytes of an MDS-coded block
  // reads r.bytes from each of m surviving blocks; the request completes
  // when the slowest sub-read lands (decode time is not modeled).
  double done = now;
  unsigned sources = 0;
  for (core::BlockIndex src = 0; src < n && sources < m; ++src) {
    if (src == b) continue;
    const DiskId sd = system_.home(g, src);
    if (sd == core::kNoDisk || !system_.disk_at(sd).alive()) continue;
    ++sources;
    reconstruction_disk_bytes_ += r.bytes.value();
    if (system_.config().topology.enabled &&
        home != core::kNoDisk &&
        !system_.config().topology.same_rack(sd, home)) {
      cross_rack_reconstruction_bytes_ += r.bytes.value();
    }
    done = std::max(done, enqueue_on(sd, r.bytes) +
                              net_delay(sd, home == core::kNoDisk ? sd : home,
                                        r.bytes));
  }
  if (sources < m) return Outcome{};  // lost a source mid-walk; treat as down
  ++degraded_reads_;
  degraded_user_bytes_ += r.bytes.value();
  o.served = true;
  o.degraded = true;
  o.latency_sec = done - now;
  return o;
}

ClientSubsystem::Outcome ClientSubsystem::serve_write(const Request& r) {
  Outcome o;
  const auto g = static_cast<core::GroupIndex>(r.group);
  if (system_.state(g).dead) return o;

  const unsigned m = system_.config().scheme.data_blocks;
  const unsigned n = system_.blocks_per_group();
  const auto b = static_cast<core::BlockIndex>(addr_rng_.below(m));
  const double now = sim_.now().value();

  // Writing r.bytes of user data updates the addressed data block and every
  // check block (n - m of them), each by r.bytes.  Sub-writes to failed
  // homes are skipped — the rebuild will restore them — but they mark the
  // request degraded.
  double done = now;
  unsigned landed = 0;
  bool skipped_failed = false;
  auto put = [&](core::BlockIndex blk) {
    const DiskId d = system_.home(g, blk);
    if (d == core::kNoDisk || !system_.disk_at(d).alive()) {
      skipped_failed = true;
      return;
    }
    ++landed;
    done = std::max(done, enqueue_on(d, r.bytes) + net_delay(d, d, r.bytes));
  };
  put(b);
  for (core::BlockIndex blk = static_cast<core::BlockIndex>(m); blk < n; ++blk) {
    put(blk);
  }
  if (landed == 0) return Outcome{};  // every replica of the update is down
  o.served = true;
  o.degraded = skipped_failed;
  o.latency_sec = done - now;
  return o;
}

double ClientSubsystem::enqueue_on(DiskId d, util::Bytes bytes) {
  double share = client_share(d);
  if (BUGGIFY("client.queue_hiccup")) share *= kQueueHiccupFactor;
  return queue_for(d).enqueue(sim_.now().value(), bytes, share).done_sec;
}

double ClientSubsystem::client_share(DiskId d) const {
  // A fail-slow disk drains its client queue slower across the board; the
  // factor is exactly 1.0 on healthy disks, leaving fault-free runs
  // bit-identical.
  const disk::Disk& dk = system_.disk_at(d);
  const unsigned streams = dk.active_recovery_streams();
  if (streams == 0) return dk.speed_factor();
  // Each rebuild stream holds its recovery-bandwidth quote of the disk.
  const double reserved = static_cast<double>(streams) *
                          system_.config().recovery_bandwidth.value();
  const double share = 1.0 - reserved / dk.bandwidth().value();
  return std::max(kMinClientShare, share) * dk.speed_factor();
}

double ClientSubsystem::net_delay(DiskId src, DiskId dst,
                                  util::Bytes bytes) const {
  const net::TopologyConfig& topo = system_.config().topology;
  if (!topo.enabled) return 0.0;
  // First-order serialization: every byte leaves through the node NIC, and
  // crosses the rack uplink when source and destination racks differ.
  // Client flows are short against rebuild flows, so they are not pushed
  // through the max-min fabric solver (whose re-quote churn they would
  // dominate); contention with rebuild traffic is modeled at the disk via
  // client_share instead.
  double delay = bytes.value() / topo.nic_bandwidth.value();
  if (!topo.same_rack(src, dst)) {
    delay += bytes.value() / topo.effective_uplink().value();
  }
  return delay;
}

ServiceQueue& ClientSubsystem::queue_for(DiskId d) {
  // Dedicated spares and replacement batches add disk slots mid-mission.
  while (queues_.size() <= d) {
    queues_.emplace_back(system_.config().disk);
  }
  return queues_[d];
}

double ClientSubsystem::total_busy_seconds() const {
  double busy = 0.0;
  for (const ServiceQueue& q : queues_) busy += q.busy_seconds();
  return busy;
}

void ClientSubsystem::sample_demand() {
  const double now = sim_.now().value();
  const double window = now - last_sample_sec_;
  const double busy = total_busy_seconds();
  const auto live = static_cast<double>(system_.live_disks());
  if (window > 0.0 && live > 0.0) {
    current_demand_ = std::clamp((busy - last_busy_seconds_) / (window * live),
                                 0.0, 1.0);
  }
  demand_integral_ += current_demand_ * window;
  last_sample_sec_ = now;
  last_busy_seconds_ = busy;
  if (now + config_.demand_sample_interval.value() <= mission_end_sec_) {
    sim_.schedule_in(config_.demand_sample_interval,
                     [this] { sample_demand(); });
  }
}

ClientSummary ClientSubsystem::summary() const {
  ClientSummary s;
  s.active = true;
  s.requests = requests_;
  s.reads = reads_;
  s.writes = writes_;
  s.degraded_reads = degraded_reads_;
  s.unavailable_requests = unavailable_;
  s.user_read_bytes = user_read_bytes_;
  s.degraded_user_bytes = degraded_user_bytes_;
  s.reconstruction_disk_bytes = reconstruction_disk_bytes_;
  s.cross_rack_reconstruction_bytes = cross_rack_reconstruction_bytes_;
  s.mean_measured_demand =
      last_sample_sec_ > 0.0 ? demand_integral_ / last_sample_sec_ : 0.0;
  s.latency.reserve(kPhaseCount);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    s.phase_counts[i] = recorder_.count(p);
    s.slo_violations[i] = recorder_.slo_violations(p);
    s.latency.push_back(recorder_.histogram(p));
  }
  return s;
}

}  // namespace farm::client
