// Per-disk FIFO service queue for foreground client I/O.
//
// Like the recovery layer's `queue_free_` drain clocks, a ServiceQueue is
// not a container: it is a drain clock plus busy-time accounting.  A
// request's start and completion times are fully determined at enqueue
// (FIFO, one request in service at a time), so the subsystem never needs a
// per-request completion event — open-loop latency is computed
// arithmetically and only closed-loop streams schedule wake-ups.
//
// Service time = seek + bytes / (bandwidth * bw_scale).  The caller passes
// bw_scale < 1 while rebuild streams hold part of the disk's bandwidth, so
// client and recovery traffic contend for the same disk-time budget.
#pragma once

#include <cstdint>

#include "disk/disk.hpp"
#include "util/units.hpp"

namespace farm::client {

class ServiceQueue {
 public:
  explicit ServiceQueue(disk::DiskParameters params) : params_(params) {}

  struct Slot {
    double start_sec = 0.0;  // service begins (after queue wait)
    double done_sec = 0.0;   // request leaves the disk
  };

  /// Appends a request arriving at `now_sec` moving `bytes`; returns its
  /// service slot.  `bw_scale` in (0, 1] derates the transfer rate for
  /// bandwidth held by concurrent rebuild streams.
  Slot enqueue(double now_sec, util::Bytes bytes, double bw_scale = 1.0);

  /// Absolute time the disk drains its queue (0 when never used).
  [[nodiscard]] double free_at() const { return free_at_; }
  /// Cumulative seconds of disk time consumed by everything ever enqueued.
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }
  [[nodiscard]] std::uint64_t served() const { return served_; }

  [[nodiscard]] const disk::DiskParameters& params() const { return params_; }

 private:
  disk::DiskParameters params_;
  double free_at_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t served_ = 0;
};

}  // namespace farm::client
