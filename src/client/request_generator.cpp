#include "client/request_generator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace farm::client {

void ClientConfig::validate() const {
  if (!enabled) return;
  if (arrivals == ArrivalKind::kOpenPoisson &&
      !(requests_per_disk_per_sec > 0.0)) {
    throw std::invalid_argument(
        "client: open-loop requests_per_disk_per_sec must be positive");
  }
  if (arrivals == ArrivalKind::kClosedLoop) {
    if (!(streams_per_disk > 0.0)) {
      throw std::invalid_argument(
          "client: closed-loop streams_per_disk must be positive");
    }
    if (think_time.value() < 0.0) {
      throw std::invalid_argument("client: think_time cannot be negative");
    }
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
    throw std::invalid_argument("client: diurnal_amplitude must be in [0, 1]");
  }
  if (diurnal_amplitude > 0.0 && !(diurnal_period.value() > 0.0)) {
    throw std::invalid_argument("client: diurnal_period must be positive");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    throw std::invalid_argument("client: read_fraction must be in [0, 1]");
  }
  if (!(request_size.value() > 0.0)) {
    throw std::invalid_argument("client: request_size must be positive");
  }
  if (size_dist == SizeDist::kLognormal && !(lognormal_sigma > 0.0)) {
    throw std::invalid_argument("client: lognormal_sigma must be positive");
  }
  if (!(slo.value() > 0.0)) {
    throw std::invalid_argument("client: slo must be positive");
  }
  if (!(demand_sample_interval.value() > 0.0)) {
    throw std::invalid_argument(
        "client: demand_sample_interval must be positive");
  }
}

RequestGenerator::RequestGenerator(const ClientConfig& config,
                                   std::uint64_t seed,
                                   std::uint64_t group_count)
    : config_(config), group_count_(group_count), rng_(seed) {
  if (group_count_ == 0) {
    throw std::invalid_argument("RequestGenerator: group_count must be > 0");
  }
}

double RequestGenerator::rate_multiplier(util::Seconds t) const {
  if (config_.diurnal_amplitude == 0.0) return 1.0;
  const double phase = 2.0 * M_PI * t.value() / config_.diurnal_period.value();
  return 1.0 - config_.diurnal_amplitude * std::cos(phase);
}

util::Seconds RequestGenerator::next_interarrival(util::Seconds now,
                                                  std::size_t live_disks) {
  const double rate = config_.requests_per_disk_per_sec *
                      static_cast<double>(live_disks) * rate_multiplier(now);
  if (!(rate > 0.0)) {
    return util::Seconds{std::numeric_limits<double>::infinity()};
  }
  return util::Seconds{rng_.exponential(rate)};
}

util::Seconds RequestGenerator::next_think_time() {
  if (!(config_.think_time.value() > 0.0)) return util::Seconds{0.0};
  // Exponential with the configured mean, so closed-loop streams desynchronize.
  return util::Seconds{rng_.exponential(1.0 / config_.think_time.value())};
}

Request RequestGenerator::next_request() {
  Request r;
  r.read = rng_.bernoulli(config_.read_fraction);
  switch (config_.size_dist) {
    case SizeDist::kFixed:
      r.bytes = config_.request_size;
      break;
    case SizeDist::kLognormal:
      r.bytes = util::Bytes{config_.request_size.value() *
                            std::exp(config_.lognormal_sigma * rng_.normal())};
      break;
  }
  r.group = rng_.below(group_count_);
  return r;
}

}  // namespace farm::client
