// Foreground client-I/O subsystem: drives the request stream through the
// cluster while the reliability simulation fails and rebuilds disks around
// it.
//
// The subsystem owns one RequestGenerator (open- or closed-loop), one
// ServiceQueue per disk slot, and one LatencyRecorder.  It interacts with
// the rest of the simulator in both directions:
//
//   recovery -> client: a disk with active rebuild streams serves client
//     requests at a derated transfer rate (the rebuild holds part of the
//     disk-time budget), and reads whose home disk is failed take the
//     degraded path — m reconstruction sub-reads fanned out across the
//     surviving blocks' disks (and across the fabric when a topology is
//     configured).
//   client -> recovery: the measured busy fraction of the service queues is
//     sampled on a fixed cadence and exposed through `measured_demand`, the
//     probe behind WorkloadKind::kGenerated — recovery bandwidth then
//     follows the *actual* client load instead of the §2.4 cosine.
//
// Requests never schedule completion events: a ServiceQueue is a drain
// clock, so a request's finish time is known arithmetically at arrival.
// Only arrivals (open loop), stream wake-ups (closed loop), and demand
// samples enter the event queue.
#pragma once

#include <cstdint>
#include <vector>

#include "client/client_config.hpp"
#include "client/latency_recorder.hpp"
#include "client/request_generator.hpp"
#include "client/service_queue.hpp"
#include "farm/recovery.hpp"
#include "farm/storage_system.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace farm::client {

using DiskId = core::DiskId;

class ClientSubsystem {
 public:
  /// `seed` must be derived from the trial seed (each trial owns exactly
  /// one subsystem; trials are the unit of Monte-Carlo parallelism, so the
  /// request sequence replays identically at any thread count).
  ClientSubsystem(core::StorageSystem& system, sim::Simulator& sim,
                  core::RecoveryPolicy& policy, std::uint64_t seed);

  ClientSubsystem(const ClientSubsystem&) = delete;
  ClientSubsystem& operator=(const ClientSubsystem&) = delete;

  /// Schedules the first arrival (or launches the closed-loop streams) and
  /// the demand-sampling cadence.  Call once, before the mission runs.
  void start();

  /// Latest windowed busy fraction of the client service queues, in [0, 1]
  /// — the WorkloadKind::kGenerated demand probe.  The argument is unused
  /// (the sample is updated on its own cadence) but kept so the probe
  /// signature matches WorkloadModel's demand function.
  [[nodiscard]] double measured_demand(double /*now_sec*/) const {
    return current_demand_;
  }

  /// Snapshot of everything measured, for TrialResult.
  [[nodiscard]] ClientSummary summary() const;

  /// White-box access for tests.
  [[nodiscard]] const LatencyRecorder& recorder() const { return recorder_; }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

 private:
  struct Outcome {
    bool served = false;    // false: the group had already lost data
    bool degraded = false;  // reconstruction or partial write fan-out
    double latency_sec = 0.0;
  };

  void schedule_open_arrival();
  void stream_next(double at_sec);
  void serve_and_record(const Request& r);
  [[nodiscard]] Outcome serve(const Request& r);
  [[nodiscard]] Outcome serve_read(const Request& r);
  [[nodiscard]] Outcome serve_write(const Request& r);

  /// Appends a sub-I/O to disk `d`'s queue and returns its absolute
  /// completion time (derated while `d` carries rebuild streams).
  double enqueue_on(DiskId d, util::Bytes bytes);
  /// Fraction of a disk's transfer rate left for client I/O while rebuild
  /// streams hold their recovery-bandwidth quotes.
  [[nodiscard]] double client_share(DiskId d) const;
  /// First-order fabric serialization delay for moving `bytes` out of
  /// `src`'s node: NIC, plus the rack uplink when `src` and `dst` sit in
  /// different racks.  Zero in flat (topology-off) mode.
  [[nodiscard]] double net_delay(DiskId src, DiskId dst,
                                 util::Bytes bytes) const;
  ServiceQueue& queue_for(DiskId d);
  [[nodiscard]] double total_busy_seconds() const;
  void sample_demand();

  core::StorageSystem& system_;
  sim::Simulator& sim_;
  core::RecoveryPolicy& policy_;
  ClientConfig config_;
  RequestGenerator generator_;
  /// Block-address choices (which data block of the group a request
  /// touches), kept apart from the arrival stream so address and timing
  /// randomness do not interleave.
  util::Xoshiro256 addr_rng_;
  LatencyRecorder recorder_;
  std::vector<ServiceQueue> queues_;  // indexed by DiskId, grown lazily
  double mission_end_sec_;

  // Counters (mirrored into ClientSummary).
  std::uint64_t requests_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::uint64_t unavailable_ = 0;
  double user_read_bytes_ = 0.0;
  double degraded_user_bytes_ = 0.0;
  double reconstruction_disk_bytes_ = 0.0;
  double cross_rack_reconstruction_bytes_ = 0.0;

  /// Absolute completion time of the most recent request, so closed-loop
  /// streams can think *after* their request finishes.
  double last_completion_sec_ = 0.0;

  // Windowed demand measurement.
  double current_demand_ = 0.0;
  double last_sample_sec_ = 0.0;
  double last_busy_seconds_ = 0.0;
  double demand_integral_ = 0.0;  // integral of windowed demand over time
};

}  // namespace farm::client
