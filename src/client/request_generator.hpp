// Client request stream: open-loop (Poisson, optionally diurnal-modulated)
// or closed-loop arrivals, with configurable read fraction and request-size
// distribution.
//
// The generator owns its own Xoshiro256 stream seeded from the trial seed,
// so the same seed reproduces the identical request sequence regardless of
// Monte-Carlo thread count (trials are the unit of parallelism; each trial
// has exactly one generator).
#pragma once

#include <cstdint>

#include "client/client_config.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace farm::client {

/// One client request, addressed to a redundancy group.
struct Request {
  bool read = true;
  util::Bytes bytes{0};
  std::uint64_t group = 0;
};

class RequestGenerator {
 public:
  /// `group_count` must be positive (requests are addressed uniformly to
  /// groups; throws std::invalid_argument otherwise).
  RequestGenerator(const ClientConfig& config, std::uint64_t seed,
                   std::uint64_t group_count);

  /// Open loop: the next exponential interarrival gap for the whole-system
  /// stream of `live_disks` disks, at absolute time `now` (the diurnal
  /// modulation samples the rate at the gap's start).  Infinite when the
  /// rate is zero.
  [[nodiscard]] util::Seconds next_interarrival(util::Seconds now,
                                                std::size_t live_disks);

  /// Closed loop: the think-time gap before a stream's next request.
  [[nodiscard]] util::Seconds next_think_time();

  /// The next request (kind, size, target group).
  [[nodiscard]] Request next_request();

  /// Diurnal rate multiplier at time t: 1 - amplitude*cos(2*pi*t/period);
  /// identically 1 when the amplitude is 0.
  [[nodiscard]] double rate_multiplier(util::Seconds t) const;

  [[nodiscard]] const ClientConfig& config() const { return config_; }

 private:
  ClientConfig config_;
  std::uint64_t group_count_;
  util::Xoshiro256 rng_;
};

}  // namespace farm::client
