// Client-latency measurement: fixed-layout log-scale histograms per phase
// (healthy / degraded / rebuilding) with SLO-violation accounting.
//
// Every recorder (and every trial summary) uses the same bin layout —
// 0.1 ms to 1000 s, 12 bins per decade — so trial histograms merge exactly
// in the Monte-Carlo aggregate and quantiles are extracted once, at report
// time, from the pooled distribution.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace farm::client {

/// What the system looked like when a request was served.
enum class Phase {
  kHealthy = 0,     // no rebuild in flight, read served from its home
  kDegraded = 1,    // the read itself needed reconstruction
  kRebuilding = 2,  // rebuilds in flight elsewhere (request itself clean)
};
inline constexpr std::size_t kPhaseCount = 3;
[[nodiscard]] std::string_view to_string(Phase p);

/// The shared histogram layout: 0.1 ms .. 1000 s, 12 bins/decade (84 bins,
/// ~21 % relative bin width — well under the run-to-run noise of a p99).
[[nodiscard]] util::LogHistogram make_latency_histogram();

class LatencyRecorder {
 public:
  explicit LatencyRecorder(util::Seconds slo);

  void record(Phase phase, double latency_sec);

  [[nodiscard]] const util::LogHistogram& histogram(Phase p) const;
  [[nodiscard]] std::uint64_t count(Phase p) const;
  [[nodiscard]] std::uint64_t slo_violations(Phase p) const;
  [[nodiscard]] double slo_sec() const { return slo_; }

 private:
  double slo_;
  std::vector<util::LogHistogram> latency_;  // one per phase
  std::array<std::uint64_t, kPhaseCount> violations_{};
};

/// Per-trial client measurements, carried inside TrialResult.  Everything
/// is plain data so trials can be aggregated off the simulation thread.
struct ClientSummary {
  bool active = false;
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads that fanned out reconstruction I/O (home disk failed, group alive).
  std::uint64_t degraded_reads = 0;
  /// Requests to groups that had already lost data (no latency recorded).
  std::uint64_t unavailable_requests = 0;
  double user_read_bytes = 0.0;
  /// User bytes requested by degraded reads, and the disk bytes their
  /// reconstruction actually read: the ratio is the measured repair read
  /// amplification (≈ k for a k+m code with one failed disk).
  double degraded_user_bytes = 0.0;
  double reconstruction_disk_bytes = 0.0;
  /// Reconstruction reads whose source sat in a different rack than the
  /// failed home (topology-enabled runs only).
  double cross_rack_reconstruction_bytes = 0.0;
  /// Time-averaged measured disk-time demand (WorkloadKind::kGenerated fuel).
  double mean_measured_demand = 0.0;
  std::array<std::uint64_t, kPhaseCount> phase_counts{};
  std::array<std::uint64_t, kPhaseCount> slo_violations{};
  /// Per-phase latency histograms (make_latency_histogram layout); empty
  /// when inactive.
  std::vector<util::LogHistogram> latency;
};

/// Monte-Carlo pool of ClientSummary across trials: counters average,
/// histograms merge (quantiles come from the pooled distribution), and
/// amplification is a ratio of pooled byte totals.
struct ClientAggregate {
  bool active = false;
  double mean_requests = 0.0;
  double mean_degraded_reads = 0.0;
  double mean_unavailable_requests = 0.0;
  double mean_measured_demand = 0.0;
  /// Pooled reconstruction_disk_bytes / pooled degraded_user_bytes
  /// (0 when no degraded reads occurred).
  double read_amplification = 0.0;
  std::array<std::uint64_t, kPhaseCount> phase_counts{};
  std::array<std::uint64_t, kPhaseCount> slo_violations{};
  std::vector<util::LogHistogram> latency;  // pooled, one per phase

  /// Folds one trial in (callers serialize; the Monte-Carlo harness holds
  /// its aggregation mutex).  Means are finalized by `finalize(trials)`.
  void merge_trial(const ClientSummary& s);
  void finalize(std::size_t trials);

  [[nodiscard]] double quantile(Phase p, double q) const;
  /// Quantile of the distribution pooled over all phases.
  [[nodiscard]] double overall_quantile(double q) const;
  [[nodiscard]] double slo_violation_fraction(Phase p) const;

 private:
  double sum_requests_ = 0.0;
  double sum_degraded_ = 0.0;
  double sum_unavailable_ = 0.0;
  double sum_demand_ = 0.0;
  double sum_degraded_user_bytes_ = 0.0;
  double sum_reconstruction_bytes_ = 0.0;
};

}  // namespace farm::client
