#include "client/service_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace farm::client {

ServiceQueue::Slot ServiceQueue::enqueue(double now_sec, util::Bytes bytes,
                                         double bw_scale) {
  if (!(bw_scale > 0.0)) {
    throw std::invalid_argument("ServiceQueue::enqueue: bw_scale must be > 0");
  }
  const double service =
      params_.seek_time.value() +
      bytes.value() / (params_.bandwidth.value() * bw_scale);
  Slot slot;
  slot.start_sec = std::max(now_sec, free_at_);
  slot.done_sec = slot.start_sec + service;
  free_at_ = slot.done_sec;
  busy_seconds_ += service;
  ++served_;
  return slot;
}

}  // namespace farm::client
