// Catalog of named buggify stress points (the FoundationDB BUGGIFY idea):
// every `BUGGIFY("...")` call site in the simulator must name an entry from
// this table.  The catalog is the single reviewable list of chaos the swarm
// can inject — farm_lint rule R6 cross-checks call sites against it, the
// spec parser rejects overrides for unknown names, and triage reports label
// fired points with these exact strings.
//
// Names are "<subsystem>.<behaviour>" and are part of the reproduction
// contract: a point's seed lane is hash_combine(buggify_seed,
// hash_string(name)), so renaming a point re-seeds it (and invalidates any
// pinned repro spec that fired it).  Add new points at the end of their
// subsystem group; never rename or reuse a name.
//
// farm_lint checks this table from both directions: R6 rejects BUGGIFY
// call sites naming unregistered points, and R8's sibling rule R9 flags
// registered points with no call site anywhere under src/ — a dead entry
// makes the swarm sample probabilities for chaos that can never fire, so
// wire the point in (or delete the entry) in the same commit that adds it.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace farm::stress {

struct BuggifyPoint {
  std::string_view name;
  std::string_view description;
};

/// Every registered stress point, grouped by subsystem.  Order is the
/// canonical reporting order (fired-point lists follow it).
inline constexpr std::array<BuggifyPoint, 13> kBuggifyCatalog{{
    // --- src/farm recovery ---------------------------------------------------
    {"recovery.stall_retry",
     "a rebuild's target selection spuriously stalls and retries with backoff"},
    {"recovery.slow_drain",
     "a flat-model rebuild transfer drains at a fraction of its quote"},
    {"recovery.requote_storm",
     "a fabric rebuild launch triggers a burst of extra max-min requotes"},
    {"recovery.retry_pileup",
     "an interrupted rebuild's retry backoff is multiplied, piling retries up"},
    {"recovery.spare_provision_lag",
     "a dedicated spare's provisioning hold is extended before it serves"},
    // --- src/net -------------------------------------------------------------
    {"net.delayed_delivery",
     "a destination queue is held closed briefly before activating a transfer"},
    {"net.delivery_reorder",
     "a waiting transfer is rotated to the back of its FIFO queue"},
    // --- src/client ----------------------------------------------------------
    {"client.queue_hiccup",
     "a client request's disk share is derated as if the queue hiccuped"},
    {"client.arrival_burst",
     "an open-arrival gap is compressed, bursting requests together"},
    // --- src/fleet -----------------------------------------------------------
    {"fleet.migration_retry_storm",
     "a completing drain migration is forced onto the retry path"},
    {"fleet.drain_pause",
     "a flat-model migration transfer is paused before it starts"},
    // --- src/fault detector --------------------------------------------------
    {"detector.flap_burst",
     "a false-positive accusation flaps: one extra disk is accused"},
    {"detector.slip_extra",
     "a heartbeat detection slips extra missed-beat intervals"},
}};

/// True when `name` is a registered stress point.
[[nodiscard]] constexpr bool buggify_point_known(std::string_view name) {
  for (const BuggifyPoint& p : kBuggifyCatalog) {
    if (p.name == name) return true;
  }
  return false;
}

/// Catalog index of `name`, or kBuggifyCatalog.size() when unknown.
[[nodiscard]] constexpr std::size_t buggify_point_index(std::string_view name) {
  for (std::size_t i = 0; i < kBuggifyCatalog.size(); ++i) {
    if (kBuggifyCatalog[i].name == name) return i;
  }
  return kBuggifyCatalog.size();
}

}  // namespace farm::stress
