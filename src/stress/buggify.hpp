// Deterministic buggify runtime: the machinery behind `BUGGIFY("name")`.
//
// A BuggifyState owns one RNG lane per catalog point, seeded
// hash_combine(buggify_seed, hash_string(point name)) — so enabling,
// disabling, or re-ordering *other* points never shifts a point's draw
// stream, and a repro spec that pins (seed, fired points) replays
// bit-for-bit.  fire() draws exactly one Bernoulli per evaluation from the
// point's own lane; magnitude helpers (uniform / pick) draw from the same
// lane, after the gate.
//
// The state is installed per thread with BuggifyState::Scope (RAII).  With
// no state installed — the default — `BUGGIFY(...)` is a thread-local
// pointer null-check and nothing else: no RNG is constructed, no draw is
// made, and every golden-pinned output stays bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stress/catalog.hpp"
#include "util/random.hpp"

namespace farm::stress {

/// Run-level stress configuration; default-constructed = fully off, and the
/// simulator then takes the zero-cost path (bit-identical to a build without
/// the stress layer at all).
struct StressConfig {
  /// Master switch; nothing below matters while false.
  bool enabled = false;
  /// Default per-evaluation fire probability for every catalog point.
  double probability = 0.05;
  /// Per-point probability overrides, kept sorted by point name (the spec
  /// emitter relies on the order; validate() enforces it).
  std::vector<std::pair<std::string, double>> overrides;

  /// Effective fire probability for `name` (override else default).
  [[nodiscard]] double point_probability(std::string_view name) const;

  /// Throws std::invalid_argument on out-of-range probabilities, unknown or
  /// duplicate override names, or unsorted overrides.
  void validate() const;
};

/// Per-run buggify state: one independent RNG lane + fired counter per
/// catalog point.  Construct once per trial (when config.enabled) and
/// install with Scope for the duration of the mission.
class BuggifyState {
 public:
  BuggifyState(const StressConfig& config, std::uint64_t seed);

  /// One Bernoulli draw from `name`'s lane; true = the stress point fires.
  /// `name` must be a registered catalog point (see kBuggifyCatalog).
  bool fire(std::string_view name);

  /// Uniform double in [lo, hi) from `name`'s lane (magnitude draws).
  double uniform(std::string_view name, double lo, double hi);

  /// Uniform integer in [0, n) from `name`'s lane.
  std::uint64_t pick(std::string_view name, std::uint64_t n);

  /// (point name, fire count) for every point that fired, catalog order.
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint64_t>> fired()
      const;

  /// The thread's installed state, or nullptr when buggify is off.
  [[nodiscard]] static BuggifyState* current();

  /// RAII installer: saves and restores the thread-local current state, so
  /// nested simulations (a trial spawned from a test that itself runs under
  /// buggify) unwind correctly.
  class Scope {
   public:
    explicit Scope(BuggifyState* state);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BuggifyState* prev_;
  };

 private:
  struct Lane {
    util::Xoshiro256 rng;
    double probability = 0.0;
    std::uint64_t fired = 0;
  };
  std::vector<Lane> lanes_;  // indexed by catalog order
};

}  // namespace farm::stress

/// The stress-point gate.  `name` must be a string literal registered in
/// kBuggifyCatalog (farm_lint rule R6 enforces this).  Evaluates to false at
/// the cost of a thread-local load when no BuggifyState is installed.
#define BUGGIFY(name)                                    \
  (::farm::stress::BuggifyState::current() != nullptr && \
   ::farm::stress::BuggifyState::current()->fire(name))
