#include "stress/buggify.hpp"

#include <algorithm>
#include <stdexcept>

namespace farm::stress {

namespace {

thread_local BuggifyState* g_current = nullptr;

}  // namespace

double StressConfig::point_probability(std::string_view name) const {
  for (const auto& [point, p] : overrides) {
    if (point == name) return p;
  }
  return probability;
}

void StressConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("stress: " + what);
  };
  if (!(probability >= 0.0 && probability <= 1.0)) {
    fail("probability must be in [0, 1]");
  }
  for (std::size_t i = 0; i < overrides.size(); ++i) {
    const auto& [name, p] = overrides[i];
    if (!buggify_point_known(name)) {
      fail("unknown buggify point '" + name + "'");
    }
    if (!(p >= 0.0 && p <= 1.0)) {
      fail("point '" + name + "' probability must be in [0, 1]");
    }
    if (i > 0 && !(overrides[i - 1].first < name)) {
      fail("overrides must be sorted by name with no duplicates ('" + name +
           "')");
    }
  }
}

BuggifyState::BuggifyState(const StressConfig& config, std::uint64_t seed) {
  lanes_.reserve(kBuggifyCatalog.size());
  for (const BuggifyPoint& point : kBuggifyCatalog) {
    lanes_.push_back(Lane{
        util::Xoshiro256{util::hash_combine(seed, util::hash_string(point.name))},
        config.point_probability(point.name), 0});
  }
}

bool BuggifyState::fire(std::string_view name) {
  const std::size_t i = buggify_point_index(name);
  if (i >= lanes_.size()) {
    throw std::logic_error("BUGGIFY point not in catalog: " + std::string(name));
  }
  Lane& lane = lanes_[i];
  // Exactly one draw per evaluation, even at probability 0, so a point's
  // stream position depends only on how often its site was reached.
  const bool hit = lane.rng.bernoulli(lane.probability);
  if (hit) ++lane.fired;
  return hit;
}

double BuggifyState::uniform(std::string_view name, double lo, double hi) {
  const std::size_t i = buggify_point_index(name);
  if (i >= lanes_.size()) {
    throw std::logic_error("BUGGIFY point not in catalog: " + std::string(name));
  }
  return lo + lanes_[i].rng.uniform() * (hi - lo);
}

std::uint64_t BuggifyState::pick(std::string_view name, std::uint64_t n) {
  const std::size_t i = buggify_point_index(name);
  if (i >= lanes_.size()) {
    throw std::logic_error("BUGGIFY point not in catalog: " + std::string(name));
  }
  return lanes_[i].rng.below(n);
}

std::vector<std::pair<std::string_view, std::uint64_t>> BuggifyState::fired()
    const {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].fired > 0) {
      out.emplace_back(kBuggifyCatalog[i].name, lanes_[i].fired);
    }
  }
  return out;
}

BuggifyState* BuggifyState::current() { return g_current; }

BuggifyState::Scope::Scope(BuggifyState* state) : prev_(g_current) {
  g_current = state;
}

BuggifyState::Scope::~Scope() { g_current = prev_; }

}  // namespace farm::stress
