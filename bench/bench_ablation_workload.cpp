// Ablation A4 — workload-aware recovery bandwidth (paper §2.4: recovery
// bandwidth "fluctuates with the intensity of user requests, especially if
// we exploit system idle time").
//
// Compares the paper's fixed 16 MB/s recovery against a diurnal workload
// where user traffic squeezes recovery down to as little as 4 MB/s at peak
// (disk 80 MB/s, min recovery floor 5 %), under FARM and under the
// dedicated spare.  FARM's sub-hour rebuilds barely notice; the spare's
// seven-hour rebuilds straddle busy periods and suffer.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

std::string point_label(core::RecoveryMode mode, bool diurnal) {
  return std::string(core::to_string(mode)) +
         (diurnal ? " + diurnal load" : " + fixed bw");
}

class AblationWorkload final : public analysis::Scenario {
 public:
  AblationWorkload()
      : Scenario({"ablation_workload",
                  "Ablation: fixed vs workload-modulated recovery bandwidth",
                  "paper §2.4 idle-time exploitation", 40}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const auto mode :
         {core::RecoveryMode::kFarm, core::RecoveryMode::kDedicatedSpare}) {
      for (const bool diurnal : {false, true}) {
        core::SystemConfig cfg = base_config(opts);
        cfg.recovery_mode = mode;
        cfg.detection_latency = util::seconds(30);
        cfg.stop_at_first_loss = true;
        if (diurnal) {
          // A genuinely busy system: even the trough leaves only 16 MB/s and
          // the peak squeezes recovery to the 4 MB/s floor, so the squeeze is
          // active through the whole cycle.
          cfg.workload.kind = core::WorkloadKind::kDiurnal;
          cfg.workload.peak_demand = 0.98;
          cfg.workload.trough_demand = 0.8;
        }
        points.push_back({point_label(mode, diurnal), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"configuration", "P(loss) [95% CI]", "rebuilds/trial"});
    for (const analysis::PointResult& r : run.points) {
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::fmt_fixed(r.result.mean_rebuilds, 0)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: the diurnal squeeze hurts the dedicated spare far\n"
          "more than FARM (longer rebuilds overlap more busy hours).\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationWorkload);

}  // namespace
