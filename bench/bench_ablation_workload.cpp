// Ablation A4 — workload-aware recovery bandwidth (paper §2.4: recovery
// bandwidth "fluctuates with the intensity of user requests, especially if
// we exploit system idle time").
//
// Compares the paper's fixed 16 MB/s recovery against a diurnal workload
// where user traffic squeezes recovery down to as little as 4 MB/s at peak
// (disk 80 MB/s, min recovery floor 5 %), under FARM and under the
// dedicated spare.  FARM's sub-hour rebuilds barely notice; the spare's
// seven-hour rebuilds straddle busy periods and suffer.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(40);
  bench::print_header("Ablation: fixed vs workload-modulated recovery bandwidth",
                      "paper §2.4 idle-time exploitation", trials);

  std::vector<analysis::SweepPoint> points;
  for (const auto mode :
       {core::RecoveryMode::kFarm, core::RecoveryMode::kDedicatedSpare}) {
    for (const bool diurnal : {false, true}) {
      core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
      cfg.recovery_mode = mode;
      cfg.detection_latency = util::seconds(30);
      cfg.stop_at_first_loss = true;
      if (diurnal) {
        // A genuinely busy system: even the trough leaves only 16 MB/s and
        // the peak squeezes recovery to the 4 MB/s floor, so the squeeze is
        // active through the whole cycle.
        cfg.workload.kind = core::WorkloadKind::kDiurnal;
        cfg.workload.peak_demand = 0.98;
        cfg.workload.trough_demand = 0.8;
      }
      points.push_back({std::string(core::to_string(mode)) +
                            (diurnal ? " + diurnal load" : " + fixed bw"),
                        cfg});
    }
  }
  const auto results = analysis::run_sweep(points, trials, 0xAB1'0004);

  util::Table table({"configuration", "P(loss) [95% CI]", "rebuilds/trial"});
  for (const auto& r : results) {
    table.add_row({r.point.label, analysis::loss_cell(r.result),
                   util::fmt_fixed(r.result.mean_rebuilds, 0)});
  }
  std::cout << table
            << "\nExpected: the diurnal squeeze hurts the dedicated spare far\n"
               "more than FARM (longer rebuilds overlap more busy hours).\n";
  return 0;
}
