// Network extension N1 — reliability vs rack-uplink oversubscription, FARM
// vs dedicated spare, on the hierarchical fabric (src/net).
//
// The paper's §3.4 sweep varies the per-disk recovery reservation; here the
// reservation stays at 16 MB/s and the *network* tightens instead.  A
// dedicated spare funnels a whole drive through one node's NIC and — since
// its declustered sources are scattered over the cluster — through its
// rack's downlink, so its rebuild time stretches as oversubscription grows.
// FARM's per-group rebuilds are spread across racks and (with the
// rack-local target rule) mostly stay off the uplinks, so it should shrug
// until the fabric is squeezed very hard.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kOversubscription[] = {1, 4, 8, 16, 32, 64};

struct Series {
  const char* label;
  core::RecoveryMode mode;
};

constexpr Series kSeries[] = {
    {"with FARM", core::RecoveryMode::kFarm},
    {"w/o FARM", core::RecoveryMode::kDedicatedSpare},
};

std::string point_label(const Series& s, double oversub) {
  return std::string(s.label) + "@" + util::fmt_fixed(oversub, 0) + "x";
}

class NetOversubscription final : public analysis::Scenario {
 public:
  NetOversubscription()
      : Scenario({"net_oversubscription",
                  "Network: rack-uplink oversubscription vs reliability",
                  "extension of §3.4 (cf. Rashmi et al., HotStorage '13)",
                  20}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Series& s : kSeries) {
      for (const double oversub : kOversubscription) {
        core::SystemConfig cfg = base_config(opts);
        cfg.recovery_mode = s.mode;
        cfg.detection_latency = util::seconds(30);
        cfg.stop_at_first_loss = true;
        // Small bricks (4 disks behind a 64 MB/s NIC, 16 disks per rack)
        // keep the cluster many racks wide even at --scale 0.01, and put
        // the derived uplink (256/oversub MB/s) below a single 16 MB/s
        // flow once oversubscription passes 16:1.
        cfg.topology.enabled = true;
        cfg.topology.disks_per_node = 4;
        cfg.topology.nodes_per_rack = 4;
        cfg.topology.nic_bandwidth = util::mb_per_sec(64);
        cfg.topology.oversubscription = oversub;
        points.push_back({point_label(s, oversub), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"uplink oversubscription", "with FARM P(loss)",
                       "with FARM window", "w/o FARM P(loss)",
                       "w/o FARM window"});
    for (const double oversub : kOversubscription) {
      std::vector<std::string> row = {util::fmt_fixed(oversub, 0) + ":1"};
      for (const Series& s : kSeries) {
        const analysis::PointResult& r = run.at(point_label(s, oversub));
        row.push_back(util::fmt_percent(r.result.loss_probability(), 1));
        row.push_back(
            util::to_string(util::Seconds{r.result.mean_window_sec}));
      }
      table.add_row(row);
    }
    std::ostringstream os;
    os << table
       << "\nExpected shape: the w/o-FARM window stretches as the uplinks\n"
          "tighten (its scattered sources feed one rack's downlink); FARM's\n"
          "rack-local rebuilds stay short until oversubscription is extreme.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(NetOversubscription);

}  // namespace
