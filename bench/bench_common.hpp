// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary honors two environment variables so the whole suite can be
// smoke-run quickly or cranked up for tighter confidence intervals:
//   FARM_TRIALS  - Monte-Carlo trials per configuration (per-bench default)
//   FARM_SCALE   - multiplies the paper's 2 PB of user data (default 1.0)
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "analysis/experiment.hpp"
#include "farm/monte_carlo.hpp"
#include "util/table.hpp"

namespace farm::bench {

inline void print_header(const std::string& title, const std::string& paper_ref,
                         std::size_t trials) {
  std::cout << "=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Trials per configuration: " << trials
            << " (override with FARM_TRIALS; FARM_SCALE scales the system)\n\n";
}

/// Wall-clock guard that prints elapsed time at the end of the binary.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  ~Stopwatch() {
    const auto dt = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
    std::cout << "\n[elapsed: " << static_cast<double>(dt.count()) / 1000.0
              << " s]\n";
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace farm::bench
