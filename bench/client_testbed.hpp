// Shared testbed configuration for the client_* scenarios.
//
// Foreground traffic is simulated per request, so the paper's full 2 PB /
// six-year mission is out of reach (10^10+ arrival events).  The client
// scenarios instead run a compressed testbed: ~1 % of the (scaled) user
// data for a ~100-disk cluster, a six-hour mission, and an exponential
// failure law with a deliberately short MTTF so every trial sees a few
// failures and their rebuilds.  Reliability numbers from this testbed are
// not comparable to the paper scenarios — it exists to measure what client
// requests experience *around* failures, not how often failures lose data.
#pragma once

#include <algorithm>

#include "analysis/scenario.hpp"
#include "util/units.hpp"

namespace farm::bench {

[[nodiscard]] inline core::SystemConfig client_testbed(
    const analysis::ScenarioOptions& opts) {
  core::SystemConfig cfg = analysis::Scenario::base_config(opts);
  // 1 % of the scaled system, floored at 4 TB (~20 disks) so even tiny
  // --scale CI runs keep a cluster wide enough for declustered recovery.
  cfg.total_user_data = util::Bytes{std::max(
      cfg.total_user_data.value() * 0.01, util::terabytes(4).value())};
  cfg.mission_time = util::hours(6);
  cfg.failure_law = core::SystemConfig::FailureLaw::kExponential;
  cfg.exponential_mttf = util::hours(200);  // a few failures per mission
  cfg.client.enabled = true;
  cfg.client.requests_per_disk_per_sec = 1.0;
  cfg.client.read_fraction = 0.9;
  cfg.client.request_size = util::megabytes(4);
  cfg.client.slo = util::seconds(0.25);
  return cfg;
}

}  // namespace farm::bench
