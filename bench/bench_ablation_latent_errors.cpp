// Ablation A5 — latent sector errors during rebuild (extension beyond the
// paper's whole-disk failure model).
//
// With ~10^-14-per-bit unrecoverable read errors, reading the m source
// blocks of every rebuild occasionally fails, and a single-fault-tolerant
// group that is already degraded loses data — the well-known reason RAID 5
// aged out as drives grew.  Double-fault-tolerant codes shrug UREs off, and
// scrubbing recovers most of the margin for the single-fault schemes.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(30);
  bench::print_header("Ablation: latent sector errors + scrubbing",
                      "extension (classic RAID5+URE analysis) on the 2 PB base",
                      trials);

  struct Variant {
    const char* label;
    bool enabled;
    double scrub;
  };
  const Variant variants[] = {
      {"no UREs (paper model)", false, 0.0},
      {"UREs, no scrubbing", true, 0.0},
      {"UREs + 90% scrubbing", true, 0.9},
  };

  util::Table table({"scheme", "variant", "P(loss) [95% CI]",
                     "URE-caused losses/trial"});
  for (const char* scheme : {"1/2", "2/3", "4/6"}) {
    for (const Variant& v : variants) {
      core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
      cfg.scheme = erasure::Scheme::parse(scheme);
      cfg.detection_latency = util::seconds(30);
      cfg.latent_errors.enabled = v.enabled;
      cfg.latent_errors.scrub_efficiency = v.scrub;
      // Count every loss, not just the first (URE losses accumulate).
      cfg.stop_at_first_loss = false;

      core::MonteCarloOptions opts;
      opts.trials = trials;
      opts.master_seed = 0xAB1'0005;
      const core::MonteCarloResult r = core::run_monte_carlo(cfg, opts);
      table.add_row({scheme, v.label, analysis::loss_cell(r),
                     util::fmt_fixed(r.mean_ure_losses, 2)});
    }
  }
  std::cout << table
            << "\nExpected: UREs devastate the single-fault schemes (1/2, 2/3),\n"
               "scrubbing claws much of it back, and 4/6 barely notices.\n";
  return 0;
}
