// Ablation A5 — latent sector errors during rebuild (extension beyond the
// paper's whole-disk failure model).
//
// With ~10^-14-per-bit unrecoverable read errors, reading the m source
// blocks of every rebuild occasionally fails, and a single-fault-tolerant
// group that is already degraded loses data — the well-known reason RAID 5
// aged out as drives grew.  Double-fault-tolerant codes shrug UREs off, and
// scrubbing recovers most of the margin for the single-fault schemes.
#include <sstream>

#include "analysis/scenario.hpp"
#include "erasure/scheme.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Variant {
  const char* label;
  bool enabled;
  double scrub;
};

constexpr Variant kVariants[] = {
    {"no UREs (paper model)", false, 0.0},
    {"UREs, no scrubbing", true, 0.0},
    {"UREs + 90% scrubbing", true, 0.9},
};

constexpr const char* kSchemes[] = {"1/2", "2/3", "4/6"};

std::string point_label(const char* scheme, const Variant& v) {
  return std::string(scheme) + "/" + v.label;
}

class AblationLatentErrors final : public analysis::Scenario {
 public:
  AblationLatentErrors()
      : Scenario({"ablation_latent_errors",
                  "Ablation: latent sector errors + scrubbing",
                  "extension (classic RAID5+URE analysis) on the 2 PB base",
                  30}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const char* scheme : kSchemes) {
      for (const Variant& v : kVariants) {
        core::SystemConfig cfg = base_config(opts);
        cfg.scheme = erasure::Scheme::parse(scheme);
        cfg.detection_latency = util::seconds(30);
        cfg.latent_errors.enabled = v.enabled;
        cfg.latent_errors.scrub_efficiency = v.scrub;
        // Count every loss, not just the first (URE losses accumulate).
        cfg.stop_at_first_loss = false;
        points.push_back({point_label(scheme, v), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"scheme", "variant", "P(loss) [95% CI]",
                       "URE-caused losses/trial"});
    for (const char* scheme : kSchemes) {
      for (const Variant& v : kVariants) {
        const auto& r = run.at(point_label(scheme, v)).result;
        table.add_row({scheme, v.label, analysis::loss_cell(r),
                       util::fmt_fixed(r.mean_ure_losses, 2)});
      }
    }
    std::ostringstream os;
    os << table
       << "\nExpected: UREs devastate the single-fault schemes (1/2, 2/3),\n"
          "scrubbing claws much of it back, and 4/6 barely notices.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationLatentErrors);

}  // namespace
