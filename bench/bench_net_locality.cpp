// Network extension N2 — where does repair traffic flow?  Rack-local vs
// cross-rack repair volume on the hierarchical fabric (src/net), with the
// rack-local target rule switched on and off.
//
// Rashmi et al. measured that declustered repair in Facebook's warehouse
// clusters pushed most reconstruction traffic across rack uplinks.  FARM's
// target selector can instead prefer a target in the reconstruction
// source's rack; this scenario quantifies how much uplink traffic that rule
// saves and what it costs in window of vulnerability.  The dedicated spare
// rides along as the worst case: a single target, sources everywhere.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Series {
  const char* label;
  core::RecoveryMode mode;
  bool rack_local;
};

constexpr Series kSeries[] = {
    {"FARM rack-local", core::RecoveryMode::kFarm, true},
    {"FARM any-rack", core::RecoveryMode::kFarm, false},
    {"dedicated-spare", core::RecoveryMode::kDedicatedSpare, false},
};

class NetLocality final : public analysis::Scenario {
 public:
  NetLocality()
      : Scenario({"net_locality",
                  "Network: rack-local vs cross-rack repair traffic",
                  "extension (cf. Rashmi et al., HotStorage '13)", 20}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Series& s : kSeries) {
      core::SystemConfig cfg = base_config(opts);
      cfg.recovery_mode = s.mode;
      cfg.detection_latency = util::seconds(30);
      cfg.target_rules.prefer_rack_local = s.rack_local;
      // Same brick geometry as net_oversubscription: 16-disk racks keep
      // the cluster many racks wide at any --scale, so locality matters.
      cfg.topology.enabled = true;
      cfg.topology.disks_per_node = 4;
      cfg.topology.nodes_per_rack = 4;
      cfg.topology.nic_bandwidth = util::mb_per_sec(64);
      cfg.topology.oversubscription = 8.0;
      points.push_back({std::string(s.label), cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"policy", "repair volume", "cross-rack share",
                       "mean window", "P(loss)"});
    for (const Series& s : kSeries) {
      const analysis::PointResult& r = run.at(s.label);
      const double local = r.result.mean_local_repair_bytes;
      const double cross = r.result.mean_cross_rack_repair_bytes;
      const double total = local + cross;
      table.add_row(
          {r.point.label, util::to_string(util::Bytes{total}),
           total > 0.0 ? util::fmt_percent(cross / total, 1) : "n/a",
           util::to_string(util::Seconds{r.result.mean_window_sec}),
           util::fmt_percent(r.result.loss_probability(), 1)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: the rack-local rule pushes the cross-rack share far\n"
          "below the any-rack run at little window cost; the dedicated\n"
          "spare's share is whatever placement scattered (near 100% once\n"
          "the cluster outgrows one rack).\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(NetLocality);

}  // namespace
