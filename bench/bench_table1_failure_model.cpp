// Table 1 — disk failure rate per 1000 hours (Elerath bathtub).
//
// Validates the failure-model substrate: samples disk lifetimes, bins the
// empirical hazard by age band, and prints it next to the rates the paper
// tabulates.  Also reports the six-year cumulative failure fraction, which
// the paper's prose puts at roughly 10 % (the "about 1,100 failures among
// 10,000 disks" behind every other experiment).
#include "bench_common.hpp"
#include "disk/failure_model.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const int samples = 500000;
  bench::print_header("Table 1: disk failure rates per 1000 hours",
                      "Xin et al., HPDC 2004, Table 1", samples);

  const auto model = disk::BathtubFailureModel::paper_table1();
  util::Xoshiro256 rng{2004};

  const double edges[] = {0.0, util::months(3).value(), util::months(6).value(),
                          util::months(12).value(), util::months(72).value()};
  const char* labels[] = {"0-3 mo", "3-6 mo", "6-12 mo", "12+ mo"};
  const double paper[] = {0.50, 0.35, 0.25, 0.20};

  double at_risk[4] = {};
  long deaths[4] = {};
  long dead_by_6y = 0;
  for (int i = 0; i < samples; ++i) {
    const double t = model.sample_lifetime(rng).value();
    if (t <= util::years(6).value()) ++dead_by_6y;
    for (int b = 0; b < 4; ++b) {
      if (t >= edges[b + 1]) {
        at_risk[b] += edges[b + 1] - edges[b];
      } else if (t > edges[b]) {
        at_risk[b] += t - edges[b];
        ++deaths[b];
        break;
      } else {
        break;
      }
    }
  }

  util::Table table({"disk age", "paper rate (%/1000h)", "measured (%/1000h)"});
  for (int b = 0; b < 4; ++b) {
    const double measured =
        static_cast<double>(deaths[b]) / at_risk[b] * 3600.0 * 1000.0 * 100.0;
    table.add_row({labels[b], util::fmt_fixed(paper[b], 2),
                   util::fmt_fixed(measured, 3)});
  }
  std::cout << table << "\n";

  std::cout << "Cumulative failures within 6 years: "
            << util::fmt_percent(static_cast<double>(dead_by_6y) / samples, 2)
            << "  (paper prose: ~10% -> ~1,100 of 10,000 disks)\n"
            << "Analytic CDF at 6 years:            "
            << util::fmt_percent(model.cdf(util::years(6)), 2) << "\n";
  return 0;
}
