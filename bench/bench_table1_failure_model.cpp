// Table 1 — disk failure rate per 1000 hours (Elerath bathtub).
//
// Validates the failure-model substrate: samples disk lifetimes, bins the
// empirical hazard by age band, and prints it next to the rates the paper
// tabulates.  Also reports the six-year cumulative failure fraction, which
// the paper's prose puts at roughly 10 % (the "about 1,100 failures among
// 10,000 disks" behind every other experiment).
//
// Not a Monte-Carlo sweep: `trials` scales the lifetime sample count
// (samples = trials x 1000, default 500,000), so execute() is overridden and
// the per-point MonteCarloResult stays empty.
#include <sstream>

#include "analysis/scenario.hpp"
#include "disk/failure_model.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Band {
  const char* label;
  double paper_rate;  // %/1000h from the paper's Table 1
};

constexpr Band kBands[] = {
    {"0-3 mo", 0.50}, {"3-6 mo", 0.35}, {"6-12 mo", 0.25}, {"12+ mo", 0.20}};

class Table1FailureModel final : public analysis::Scenario {
 public:
  Table1FailureModel()
      : Scenario({"table1_failure_model",
                  "Table 1: disk failure rates per 1000 hours",
                  "Xin et al., HPDC 2004, Table 1", 500}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Band& b : kBands) points.push_back({b.label, base_config(opts)});
    return points;
  }

 protected:
  void execute(const analysis::ScenarioOptions& opts,
               std::uint64_t scenario_seed,
               analysis::ScenarioRun& out) const override {
    const std::size_t samples = out.trials * 1000;
    const auto model = disk::BathtubFailureModel::paper_table1();
    util::Xoshiro256 rng{scenario_seed};

    const double edges[] = {0.0, util::months(3).value(),
                            util::months(6).value(), util::months(12).value(),
                            util::months(72).value()};
    double at_risk[4] = {};
    long deaths[4] = {};
    long dead_by_6y = 0;
    for (std::size_t i = 0; i < samples; ++i) {
      const double t = model.sample_lifetime(rng).value();
      if (t <= util::years(6).value()) ++dead_by_6y;
      for (int b = 0; b < 4; ++b) {
        if (t >= edges[b + 1]) {
          at_risk[b] += edges[b + 1] - edges[b];
        } else if (t > edges[b]) {
          at_risk[b] += t - edges[b];
          ++deaths[b];
          break;
        } else {
          break;
        }
      }
    }

    const std::vector<analysis::SweepPoint> points = build_points(opts);
    for (int b = 0; b < 4; ++b) {
      analysis::PointResult pr;
      pr.point = points[static_cast<std::size_t>(b)];
      pr.seed = scenario_seed;
      const double measured = at_risk[b] > 0.0
                                  ? static_cast<double>(deaths[b]) / at_risk[b] *
                                        3600.0 * 1000.0 * 100.0
                                  : 0.0;
      pr.extra.push_back({"paper_rate_pct_per_1000h", kBands[b].paper_rate});
      pr.extra.push_back({"measured_rate_pct_per_1000h", measured});
      out.points.push_back(std::move(pr));
      if (opts.progress) opts.progress(kBands[b].label);
    }
    out.extra.push_back({"lifetime_samples", static_cast<double>(samples)});
    out.extra.push_back(
        {"cumulative_failures_6y",
         static_cast<double>(dead_by_6y) / static_cast<double>(samples)});
    out.extra.push_back({"analytic_cdf_6y", model.cdf(util::years(6))});
  }

  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table(
        {"disk age", "paper rate (%/1000h)", "measured (%/1000h)"});
    for (const Band& b : kBands) {
      const analysis::PointResult& pr = run.at(b.label);
      table.add_row({b.label, util::fmt_fixed(b.paper_rate, 2),
                     util::fmt_fixed(pr.extra[1].second, 3)});
    }
    std::ostringstream os;
    os << table << "\n";
    const auto scenario_extra = [&](std::string_view key) {
      for (const auto& [k, v] : run.extra) {
        if (k == key) return v;
      }
      return 0.0;
    };
    os << "Cumulative failures within 6 years: "
       << util::fmt_percent(scenario_extra("cumulative_failures_6y"), 2)
       << "  (paper prose: ~10% -> ~1,100 of 10,000 disks)\n"
       << "Analytic CDF at 6 years:            "
       << util::fmt_percent(scenario_extra("analytic_cdf_6y"), 2) << "\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(Table1FailureModel);

}  // namespace
