// Figure 5 — system reliability vs the disk bandwidth devoted to recovery
// (8-40 MB/s), for group sizes of 10 GB and 50 GB, with and without FARM,
// at 30 s detection latency.
//
// Paper shape: more recovery bandwidth helps dramatically *without* FARM
// (the single spare's queue shortens), but has little effect *with* FARM,
// whose windows are already tiny; smaller groups fare worse throughout
// because detection latency dominates their windows.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kBandwidths[] = {8, 16, 24, 32, 40};

struct Series {
  const char* label;
  double group_gb;
  core::RecoveryMode mode;
};

constexpr Series kSeries[] = {
    {"w/o FARM, 10GB", 10.0, core::RecoveryMode::kDedicatedSpare},
    {"w/o FARM, 50GB", 50.0, core::RecoveryMode::kDedicatedSpare},
    {"with FARM, 10GB", 10.0, core::RecoveryMode::kFarm},
    {"with FARM, 50GB", 50.0, core::RecoveryMode::kFarm},
};

std::string point_label(const Series& s, double bw) {
  return std::string(s.label) + "@" + util::fmt_fixed(bw, 0);
}

class Fig5RecoveryBandwidth final : public analysis::Scenario {
 public:
  Fig5RecoveryBandwidth()
      : Scenario({"fig5_recovery_bandwidth",
                  "Figure 5: recovery bandwidth vs reliability",
                  "Xin et al., HPDC 2004, Fig. 5", 40}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Series& s : kSeries) {
      for (const double bw : kBandwidths) {
        core::SystemConfig cfg = base_config(opts);
        cfg.group_size = util::gigabytes(s.group_gb);
        cfg.recovery_mode = s.mode;
        cfg.recovery_bandwidth = util::mb_per_sec(bw);
        cfg.detection_latency = util::seconds(30);
        cfg.stop_at_first_loss = true;
        points.push_back({point_label(s, bw), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    std::vector<std::string> headers = {"recovery bandwidth (MB/s)"};
    for (const Series& s : kSeries) headers.emplace_back(s.label);
    util::Table table(headers);
    for (const double bw : kBandwidths) {
      std::vector<std::string> row = {util::fmt_fixed(bw, 0)};
      for (const Series& s : kSeries) {
        row.push_back(util::fmt_percent(
            run.at(point_label(s, bw)).result.loss_probability(), 1));
      }
      table.add_row(row);
    }
    std::ostringstream os;
    os << table
       << "\nExpected shape: the w/o-FARM columns fall steeply as bandwidth\n"
          "grows; the FARM columns stay flat and low (paper §3.4).\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(Fig5RecoveryBandwidth);

}  // namespace
