// Figure 5 — system reliability vs the disk bandwidth devoted to recovery
// (8-40 MB/s), for group sizes of 10 GB and 50 GB, with and without FARM,
// at 30 s detection latency.
//
// Paper shape: more recovery bandwidth helps dramatically *without* FARM
// (the single spare's queue shortens), but has little effect *with* FARM,
// whose windows are already tiny; smaller groups fare worse throughout
// because detection latency dominates their windows.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(40);
  bench::print_header("Figure 5: recovery bandwidth vs reliability",
                      "Xin et al., HPDC 2004, Fig. 5", trials);

  const double bandwidths[] = {8, 16, 24, 32, 40};
  struct Series {
    const char* label;
    double group_gb;
    core::RecoveryMode mode;
  };
  const Series series[] = {
      {"w/o FARM, 10GB", 10.0, core::RecoveryMode::kDedicatedSpare},
      {"w/o FARM, 50GB", 50.0, core::RecoveryMode::kDedicatedSpare},
      {"with FARM, 10GB", 10.0, core::RecoveryMode::kFarm},
      {"with FARM, 50GB", 50.0, core::RecoveryMode::kFarm},
  };

  std::vector<analysis::SweepPoint> points;
  for (const Series& s : series) {
    for (const double bw : bandwidths) {
      core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
      cfg.group_size = util::gigabytes(s.group_gb);
      cfg.recovery_mode = s.mode;
      cfg.recovery_bandwidth = util::mb_per_sec(bw);
      cfg.detection_latency = util::seconds(30);
      cfg.stop_at_first_loss = true;
      points.push_back({std::string(s.label) + "@" + util::fmt_fixed(bw, 0), cfg});
    }
  }
  const auto results = analysis::run_sweep(points, trials, 0xF16'5000);

  std::vector<std::string> headers = {"recovery bandwidth (MB/s)"};
  for (const Series& s : series) headers.emplace_back(s.label);
  util::Table table(headers);
  for (std::size_t bi = 0; bi < std::size(bandwidths); ++bi) {
    std::vector<std::string> row = {util::fmt_fixed(bandwidths[bi], 0)};
    for (std::size_t si = 0; si < std::size(series); ++si) {
      row.push_back(util::fmt_percent(
          results[si * std::size(bandwidths) + bi].result.loss_probability(), 1));
    }
    table.add_row(row);
  }
  std::cout << table
            << "\nExpected shape: the w/o-FARM columns fall steeply as bandwidth\n"
               "grows; the FARM columns stay flat and low (paper §3.4).\n";
  return 0;
}
