// Client extension C1 — what do users feel when a disk dies?  Per-phase
// request latency (healthy / degraded / rebuilding) under all three
// recovery policies on the client testbed.
//
// This is the question the paper's recovery-bandwidth tradeoff exists for
// but never measures: FARM's declustered rebuild finishes in minutes, so
// requests spend little time on the degraded-reconstruction path; the
// dedicated spare serializes the whole disk through one target, leaving
// reads degraded for hours while the spare's sources carry rebuild streams.
// The p99 gap between the two during rebuild is the scenario's headline.
#include <sstream>

#include "analysis/scenario.hpp"
#include "client_testbed.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Series {
  const char* label;
  core::RecoveryMode mode;
};

constexpr Series kSeries[] = {
    {"FARM", core::RecoveryMode::kFarm},
    {"dedicated-spare", core::RecoveryMode::kDedicatedSpare},
    {"distributed-sparing", core::RecoveryMode::kDistributedSparing},
};

class ClientDegradedLatency final : public analysis::Scenario {
 public:
  ClientDegradedLatency()
      : Scenario({"client_degraded_latency",
                  "Client: per-phase latency under the recovery policies",
                  "extension (cf. paper section 2.4 workload model)", 5}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Series& s : kSeries) {
      core::SystemConfig cfg = bench::client_testbed(opts);
      cfg.recovery_mode = s.mode;
      points.push_back({std::string(s.label), cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"policy", "requests", "degraded", "healthy p99",
                       "rebuild p99", "degraded p99", "SLO miss (degr.)"});
    for (const Series& s : kSeries) {
      const analysis::PointResult& r = run.at(s.label);
      const auto& c = r.result.client;
      table.add_row(
          {r.point.label, util::fmt_fixed(c.mean_requests, 0),
           util::fmt_fixed(c.mean_degraded_reads, 0),
           util::to_string(
               util::Seconds{c.quantile(client::Phase::kHealthy, 0.99)}),
           util::to_string(
               util::Seconds{c.quantile(client::Phase::kRebuilding, 0.99)}),
           util::to_string(
               util::Seconds{c.quantile(client::Phase::kDegraded, 0.99)}),
           util::fmt_percent(
               c.slo_violation_fraction(client::Phase::kDegraded), 1)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: healthy p99 is identical across policies (same disks,\n"
          "same load).  FARM clears rebuilds fastest, so it serves the\n"
          "fewest degraded requests and its rebuilding-phase p99 stays near\n"
          "healthy; the dedicated spare leaves blocks degraded for hours\n"
          "and shows the largest degraded count and p99.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(ClientDegradedLatency);

}  // namespace
