// Figure 6 + Table 3 — disk space utilization under FARM.
//
// FARM never re-collects a failed disk's data onto one replacement; it
// scatters it, so per-disk utilization creeps up and spreads out over the
// six-year mission.  The paper reports, for redundancy groups of 1, 10 and
// 50 GB on 10,000 x 1 TB disks filled to 400 GB:
//   * Table 3: the mean utilization grows identically for all group sizes,
//     but the standard deviation grows with group size;
//   * Fig 6: ten randomly-chosen disks before/after (failed disk -> 0 load).
//
// Registered as two scenarios: fig6_utilization (one trial, the ten-disk
// before/after snapshot) and table3_utilization (pooled live-disk stats).
// Both need per-trial observers, so they override run_point; the pooled
// MonteCarloResult's final_utilization can't be reused for Table 3 because
// it includes dead disks.
#include <mutex>

#include <sstream>

#include "analysis/scenario.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kGroupsGb[] = {1.0, 10.0, 50.0};

std::string point_label(double gb) {
  return util::fmt_fixed(gb, 0) + " GB";
}

std::vector<analysis::SweepPoint> utilization_points(
    const analysis::ScenarioOptions& opts) {
  std::vector<analysis::SweepPoint> points;
  for (const double gb : kGroupsGb) {
    core::SystemConfig cfg = analysis::Scenario::base_config(opts);
    cfg.group_size = util::gigabytes(gb);
    cfg.collect_utilization = true;
    points.push_back({point_label(gb), cfg});
  }
  return points;
}

class Fig6Utilization final : public analysis::Scenario {
 public:
  Fig6Utilization()
      : Scenario({"fig6_utilization",
                  "Figure 6: utilization of ten random disks before/after",
                  "Xin et al., HPDC 2004, Fig. 6", 1}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    return utilization_points(opts);
  }

 protected:
  analysis::PointResult run_point(
      const analysis::SweepPoint& point,
      const core::MonteCarloOptions& mc) const override {
    std::vector<double> initial, final_bytes;
    std::mutex mu;
    core::MonteCarloOptions opts = mc;
    opts.observer = [&](std::size_t i, const core::TrialResult& r) {
      std::lock_guard lock(mu);
      if (i == 0) {
        initial = r.initial_used_bytes;
        final_bytes = r.final_used_bytes;
      }
    };
    analysis::PointResult pr;
    pr.point = point;
    pr.result = core::run_monte_carlo(point.config, opts);
    // Ten deterministic "random" disks from the first trial.
    util::Xoshiro256 pick{42};
    for (int i = 0; i < 10; ++i) {
      const auto d = static_cast<std::size_t>(pick.below(initial.size()));
      pr.extra.push_back(
          {"disk_" + std::to_string(d) + "/initial_gb", initial[d] / util::kGB});
      pr.extra.push_back({"disk_" + std::to_string(d) + "/final_gb",
                          final_bytes[d] / util::kGB});
    }
    return pr;
  }

  std::string format(const analysis::ScenarioRun& run) const override {
    std::ostringstream os;
    for (const double gb : kGroupsGb) {
      const analysis::PointResult& pr = run.at(point_label(gb));
      util::Table fig6({"disk id", "initial (GB)", "after 6 years (GB)"});
      for (std::size_t i = 0; i + 1 < pr.extra.size(); i += 2) {
        const std::string& key = pr.extra[i].first;  // "disk_<id>/initial_gb"
        const std::string id = key.substr(5, key.find('/') - 5);
        fig6.add_row({id, util::fmt_fixed(pr.extra[i].second, 0),
                      util::fmt_fixed(pr.extra[i + 1].second, 0)});
      }
      os << "Fig 6, group size = " << util::fmt_fixed(gb, 0)
         << " GB (a failed disk shows 0 after 6 years):\n"
         << fig6 << "\n";
    }
    return os.str();
  }
};

class Table3Utilization final : public analysis::Scenario {
 public:
  Table3Utilization()
      : Scenario({"table3_utilization",
                  "Table 3: mean and stddev of disk utilization",
                  "Xin et al., HPDC 2004, Table 3", 8}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    return utilization_points(opts);
  }

 protected:
  analysis::PointResult run_point(
      const analysis::SweepPoint& point,
      const core::MonteCarloOptions& mc) const override {
    // Pool live-disk utilization across trials; failed disks carry no load
    // and would drag the six-year mean down.
    util::OnlineStats initial, final_live;
    std::mutex mu;
    core::MonteCarloOptions opts = mc;
    opts.observer = [&](std::size_t, const core::TrialResult& r) {
      std::lock_guard lock(mu);
      for (std::size_t d = 0; d < r.initial_used_bytes.size(); ++d) {
        initial.add(r.initial_used_bytes[d] / util::kGB);
        if (r.final_used_bytes[d] > 0.0) {
          final_live.add(r.final_used_bytes[d] / util::kGB);
        }
      }
    };
    analysis::PointResult pr;
    pr.point = point;
    pr.result = core::run_monte_carlo(point.config, opts);
    pr.extra.push_back({"initial_mean_gb", initial.mean()});
    pr.extra.push_back({"initial_stddev_gb", initial.stddev()});
    pr.extra.push_back({"final_live_mean_gb", final_live.mean()});
    pr.extra.push_back({"final_live_stddev_gb", final_live.stddev()});
    return pr;
  }

  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table3({"group size", "initial mean", "initial stddev",
                        "6y mean (live disks)", "6y stddev"});
    for (const double gb : kGroupsGb) {
      const analysis::PointResult& pr = run.at(point_label(gb));
      table3.add_row({point_label(gb),
                      util::fmt_fixed(pr.extra[0].second, 1) + " GB",
                      util::fmt_fixed(pr.extra[1].second, 2) + " GB",
                      util::fmt_fixed(pr.extra[2].second, 1) + " GB",
                      util::fmt_fixed(pr.extra[3].second, 2) + " GB"});
    }
    std::ostringstream os;
    os << table3
       << "\nExpected shape: identical means across group sizes (~400 GB\n"
          "initial, ~440-450 GB after six years on survivors); stddev\n"
          "grows with group size (paper: 1.41 -> 18.3 GB initial).\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(Fig6Utilization);
FARM_REGISTER_SCENARIO(Table3Utilization);

}  // namespace
