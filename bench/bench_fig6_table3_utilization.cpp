// Figure 6 + Table 3 — disk space utilization under FARM.
//
// FARM never re-collects a failed disk's data onto one replacement; it
// scatters it, so per-disk utilization creeps up and spreads out over the
// six-year mission.  The paper reports, for redundancy groups of 1, 10 and
// 50 GB on 10,000 x 1 TB disks filled to 400 GB:
//   * Table 3: the mean utilization grows identically for all group sizes,
//     but the standard deviation grows with group size;
//   * Fig 6: ten randomly-chosen disks before/after (failed disk -> 0 load).
#include "bench_common.hpp"

#include <mutex>

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(8);
  bench::print_header("Figure 6 / Table 3: disk space utilization",
                      "Xin et al., HPDC 2004, Fig. 6, Table 3", trials);

  util::Table table3({"group size", "initial mean", "initial stddev",
                      "6y mean (live disks)", "6y stddev"});
  for (const double gb : {1.0, 10.0, 50.0}) {
    core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
    cfg.group_size = util::gigabytes(gb);
    cfg.collect_utilization = true;

    // Pool live-disk utilization across trials; keep one trial's raw
    // snapshot for the Fig 6 ten-disk view.
    util::OnlineStats initial, final_live;
    std::vector<double> fig6_initial, fig6_final;
    std::mutex mu;
    core::MonteCarloOptions opts;
    opts.trials = trials;
    opts.master_seed = 0xF16'6000 + static_cast<std::uint64_t>(gb);
    opts.observer = [&](std::size_t i, const core::TrialResult& r) {
      std::lock_guard lock(mu);
      for (std::size_t d = 0; d < r.initial_used_bytes.size(); ++d) {
        initial.add(r.initial_used_bytes[d] / util::kGB);
        if (r.final_used_bytes[d] > 0.0) {  // failed disks carry no load
          final_live.add(r.final_used_bytes[d] / util::kGB);
        }
      }
      if (i == 0) {
        fig6_initial = r.initial_used_bytes;
        fig6_final = r.final_used_bytes;
      }
    };
    (void)core::run_monte_carlo(cfg, opts);

    table3.add_row({util::fmt_fixed(gb, 0) + " GB",
                    util::fmt_fixed(initial.mean(), 1) + " GB",
                    util::fmt_fixed(initial.stddev(), 2) + " GB",
                    util::fmt_fixed(final_live.mean(), 1) + " GB",
                    util::fmt_fixed(final_live.stddev(), 2) + " GB"});

    // Fig 6: ten deterministic "random" disks from the first trial.
    util::Table fig6({"disk id", "initial (GB)", "after 6 years (GB)"});
    util::Xoshiro256 pick{42};
    for (int i = 0; i < 10; ++i) {
      const auto d = static_cast<std::size_t>(pick.below(fig6_initial.size()));
      fig6.add_row({std::to_string(d),
                    util::fmt_fixed(fig6_initial[d] / util::kGB, 0),
                    util::fmt_fixed(fig6_final[d] / util::kGB, 0)});
    }
    std::cout << "Fig 6, group size = " << gb
              << " GB (a failed disk shows 0 after 6 years):\n"
              << fig6 << "\n";
  }

  std::cout << "Table 3: mean and standard deviation of disk utilization\n"
            << table3
            << "\nExpected shape: identical means across group sizes (~400 GB\n"
               "initial, ~440-450 GB after six years on survivors); stddev\n"
               "grows with group size (paper: 1.41 -> 18.3 GB initial).\n";
  return 0;
}
