// Micro-benchmark: byte-level codec throughput (encode / reconstruct) for
// every redundancy scheme the paper evaluates, using google-benchmark.
// The paper notes (§2.2) that "since disk access times are comparatively
// long, time to compute an ECC is relatively unimportant" — these numbers
// quantify that claim on the actual codecs.
#include <benchmark/benchmark.h>

#include <vector>

#include "erasure/codec.hpp"
#include "util/random.hpp"

namespace {

using namespace farm::erasure;

std::vector<std::vector<Byte>> make_blocks(const Codec& codec, std::size_t len) {
  const Scheme s = codec.scheme();
  len = (len + codec.block_granularity() - 1) / codec.block_granularity() *
        codec.block_granularity();
  std::vector<std::vector<Byte>> blocks(s.total_blocks, std::vector<Byte>(len));
  farm::util::Xoshiro256 rng{1};
  for (unsigned i = 0; i < s.data_blocks; ++i) {
    for (auto& b : blocks[i]) b = static_cast<Byte>(rng.below(256));
  }
  return blocks;
}

void encode_all(const Codec& codec, std::vector<std::vector<Byte>>& blocks) {
  const Scheme s = codec.scheme();
  std::vector<BlockView> data;
  std::vector<BlockSpan> check;
  for (unsigned i = 0; i < s.data_blocks; ++i) data.emplace_back(blocks[i]);
  for (unsigned i = s.data_blocks; i < s.total_blocks; ++i) check.emplace_back(blocks[i]);
  codec.encode(data, check);
}

void BM_Encode(benchmark::State& state, Scheme scheme, CodecPreference pref) {
  const auto codec = make_codec(scheme, pref);
  auto blocks = make_blocks(*codec, 1 << 20);  // 1 MiB blocks (paper default)
  for (auto _ : state) {
    encode_all(*codec, blocks);
    benchmark::DoNotOptimize(blocks.back().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks[0].size()) *
                          scheme.data_blocks);
}

void BM_ReconstructWorstCase(benchmark::State& state, Scheme scheme,
                             CodecPreference pref) {
  const auto codec = make_codec(scheme, pref);
  auto blocks = make_blocks(*codec, 1 << 20);
  encode_all(*codec, blocks);
  // Erase the maximum tolerated number of *data* blocks.
  const unsigned k = scheme.check_blocks();
  const unsigned erased = std::min(k, scheme.data_blocks);
  std::vector<BlockRef> available;
  for (unsigned i = erased; i < scheme.total_blocks; ++i) {
    available.push_back(BlockRef{i, blocks[i]});
  }
  std::vector<std::vector<Byte>> out(erased, std::vector<Byte>(blocks[0].size()));
  std::vector<BlockOut> missing;
  for (unsigned i = 0; i < erased; ++i) missing.push_back(BlockOut{i, out[i]});
  for (auto _ : state) {
    codec->reconstruct(available, missing);
    benchmark::DoNotOptimize(out[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks[0].size()) * erased);
}

}  // namespace

#define FARM_CODEC_BENCH(name, m, n, pref)                                   \
  BENCHMARK_CAPTURE(BM_Encode, name, farm::erasure::Scheme{m, n}, pref);     \
  BENCHMARK_CAPTURE(BM_ReconstructWorstCase, name, farm::erasure::Scheme{m, n}, pref)

FARM_CODEC_BENCH(mirror_1_2, 1, 2, CodecPreference::kAuto);
FARM_CODEC_BENCH(mirror_1_3, 1, 3, CodecPreference::kAuto);
FARM_CODEC_BENCH(raid5_2_3, 2, 3, CodecPreference::kAuto);
FARM_CODEC_BENCH(raid5_4_5, 4, 5, CodecPreference::kAuto);
FARM_CODEC_BENCH(rs_4_6, 4, 6, CodecPreference::kAuto);
FARM_CODEC_BENCH(rs_8_10, 8, 10, CodecPreference::kAuto);
FARM_CODEC_BENCH(evenodd_4_6, 4, 6, CodecPreference::kEvenOdd);
FARM_CODEC_BENCH(evenodd_8_10, 8, 10, CodecPreference::kEvenOdd);

BENCHMARK_MAIN();
