// Figure 8 — probability of data loss vs total system capacity
// (0.1 - 5 PB) for all six redundancy configurations under FARM, with
// 10 GB groups.  Registered as two scenarios:
//   fig8a — disks with the Table 1 failure rates, and
//   fig8b — disks failing at twice those rates (worse vintage).
//
// Paper shape: P(loss) grows roughly linearly with capacity; a 5 PB system
// with 1/2 + FARM reaches several percent while 1/3, 4/6 and 8/10 stay
// below 0.1 %; doubling the hazard more than doubles P(loss).
#include <sstream>

#include "analysis/scenario.hpp"
#include "erasure/scheme.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kCapacitiesPb[] = {0.1, 0.5, 1.0, 2.0, 5.0};

std::string point_label(const erasure::Scheme& scheme, double pb) {
  return scheme.str() + "@" + util::fmt_fixed(pb, 1) + "PB";
}

class Fig8SystemScale final : public analysis::Scenario {
 public:
  Fig8SystemScale(char variant, double hazard)
      : Scenario({std::string("fig8") + variant + "_system_scale",
                  std::string("Figure 8(") + variant +
                      "): reliability vs system scale, " +
                      (hazard == 1.0 ? "Table 1 failure rates"
                                     : "doubled failure rates"),
                  std::string("Xin et al., HPDC 2004, Fig. 8(") + variant + ")",
                  20}),
        variant_(variant),
        hazard_(hazard) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const auto& scheme : erasure::paper_schemes()) {
      for (const double pb : kCapacitiesPb) {
        core::SystemConfig cfg = base_config(opts);
        cfg.total_user_data = cfg.total_user_data * (pb / 2.0);  // base is 2 PB
        cfg.scheme = scheme;
        // A heavily scaled-down 0.1 PB point can end up with fewer disks
        // than the widest scheme has blocks; grow it to the smallest valid
        // system instead of aborting the whole sweep.
        while (cfg.disk_count() < scheme.total_blocks) {
          cfg.total_user_data = cfg.total_user_data * 2.0;
        }
        cfg.hazard_scale = hazard_;
        cfg.detection_latency = util::seconds(30);
        cfg.stop_at_first_loss = true;
        points.push_back({point_label(scheme, pb), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    std::vector<std::string> headers = {"capacity (PB)"};
    for (const auto& scheme : erasure::paper_schemes()) {
      headers.push_back(scheme.str());
    }
    util::Table table(headers);
    for (const double pb : kCapacitiesPb) {
      std::vector<std::string> row = {util::fmt_fixed(pb, 1)};
      for (const auto& scheme : erasure::paper_schemes()) {
        row.push_back(util::fmt_percent(
            run.at(point_label(scheme, pb)).result.loss_probability(), 1));
      }
      table.add_row(row);
    }
    std::ostringstream os;
    os << "Fig 8(" << variant_ << "): failure rates "
       << (hazard_ == 1.0 ? "from Table 1" : "doubled (worse vintage)") << "\n"
       << table
       << "\nExpected shape: roughly linear growth with capacity; doubling\n"
          "the hazard more than doubles P(loss) (paper §3.7).\n";
    return os.str();
  }

 private:
  char variant_;
  double hazard_;
};

const analysis::ScenarioRegistrar fig8a_registrar{
    std::make_unique<Fig8SystemScale>('a', 1.0)};
const analysis::ScenarioRegistrar fig8b_registrar{
    std::make_unique<Fig8SystemScale>('b', 2.0)};

}  // namespace
