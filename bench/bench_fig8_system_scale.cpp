// Figure 8 — probability of data loss vs total system capacity
// (0.1 - 5 PB) for all six redundancy configurations under FARM, with
// 10 GB groups:
//   (a) disks with the Table 1 failure rates, and
//   (b) disks failing at twice those rates (worse vintage).
//
// Paper shape: P(loss) grows roughly linearly with capacity; a 5 PB system
// with 1/2 + FARM reaches several percent while 1/3, 4/6 and 8/10 stay
// below 0.1 %; doubling the hazard more than doubles P(loss).
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(20);
  bench::print_header("Figure 8: reliability vs system scale",
                      "Xin et al., HPDC 2004, Fig. 8(a)/(b)", trials);

  const double capacities_pb[] = {0.1, 0.5, 1.0, 2.0, 5.0};

  for (const double hazard : {1.0, 2.0}) {
    std::vector<analysis::SweepPoint> points;
    for (const auto& scheme : erasure::paper_schemes()) {
      for (const double pb : capacities_pb) {
        core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
        cfg.total_user_data = cfg.total_user_data * (pb / 2.0);  // base is 2 PB
        cfg.scheme = scheme;
        cfg.hazard_scale = hazard;
        cfg.detection_latency = util::seconds(30);
        cfg.stop_at_first_loss = true;
        points.push_back(
            {scheme.str() + "@" + util::fmt_fixed(pb, 1) + "PB", cfg});
      }
    }
    const auto results =
        analysis::run_sweep(points, trials, 0xF16'8000 + static_cast<std::uint64_t>(hazard));

    std::vector<std::string> headers = {"capacity (PB)"};
    for (const auto& scheme : erasure::paper_schemes()) headers.push_back(scheme.str());
    util::Table table(headers);
    for (std::size_t ci = 0; ci < std::size(capacities_pb); ++ci) {
      std::vector<std::string> row = {util::fmt_fixed(capacities_pb[ci], 1)};
      for (std::size_t si = 0; si < erasure::paper_schemes().size(); ++si) {
        row.push_back(util::fmt_percent(
            results[si * std::size(capacities_pb) + ci].result.loss_probability(),
            1));
      }
      table.add_row(row);
    }
    std::cout << "Fig 8(" << (hazard == 1.0 ? 'a' : 'b') << "): failure rates "
              << (hazard == 1.0 ? "from Table 1" : "doubled (worse vintage)")
              << "\n"
              << table << "\n";
  }
  std::cout << "Expected shape: roughly linear growth with capacity; doubling\n"
               "the hazard more than doubles P(loss) (paper §3.7).\n";
  return 0;
}
