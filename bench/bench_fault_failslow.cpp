// Fault extension F2 — fail-slow disks and what clients feel.  A drive
// that silently drops to a fraction of its bandwidth slows both the
// rebuild streams it serves and the foreground requests queued on it —
// often for weeks before anyone notices.  This scenario measures the
// client-latency cost of leaving fail-slow drives in place, and how much
// of it SMART-triggered proactive eviction (treat the limping drive as
// failed, rebuild it at full speed elsewhere) buys back.
#include <sstream>

#include "analysis/scenario.hpp"
#include "client_testbed.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Series {
  const char* label;
  bool enabled;
  double onset_mtbf_hours;
  double bandwidth_fraction;
  bool evict;
};

constexpr Series kSeries[] = {
    {"healthy", false, 0.0, 1.0, false},
    {"fail-slow", true, 60.0, 0.25, false},
    {"fail-slow-severe", true, 20.0, 0.10, false},
    {"severe+evict", true, 20.0, 0.10, true},
};

class FaultFailSlow final : public analysis::Scenario {
 public:
  FaultFailSlow()
      : Scenario({"fault_failslow",
                  "Faults: fail-slow disks, client latency, and eviction",
                  "extension (cf. paper section 2.3 S.M.A.R.T. prediction)",
                  5}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Series& s : kSeries) {
      core::SystemConfig cfg = bench::client_testbed(opts);
      if (s.enabled) {
        cfg.fault.fail_slow.enabled = true;
        cfg.fault.fail_slow.onset_mtbf = util::hours(s.onset_mtbf_hours);
        cfg.fault.fail_slow.bandwidth_fraction = s.bandwidth_fraction;
        cfg.fault.fail_slow.smart_eviction = s.evict;
        cfg.fault.fail_slow.eviction_delay = util::hours(1);
      }
      points.push_back({std::string(s.label), std::move(cfg)});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"variant", "onsets", "evicted", "healthy p99",
                       "degraded p99", "mean window", "SLO miss"});
    for (const Series& s : kSeries) {
      const analysis::PointResult& r = run.at(s.label);
      const auto& c = r.result.client;
      table.add_row(
          {s.label, util::fmt_fixed(r.result.mean_fail_slow_onsets, 1),
           util::fmt_fixed(r.result.mean_proactive_evictions, 1),
           util::to_string(
               util::Seconds{c.quantile(client::Phase::kHealthy, 0.99)}),
           util::to_string(
               util::Seconds{c.quantile(client::Phase::kDegraded, 0.99)}),
           util::to_string(util::Seconds{r.result.mean_window_sec}),
           util::fmt_percent(
               c.slo_violation_fraction(client::Phase::kHealthy), 1)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: fail-slow onsets stretch the healthy-phase tail (the\n"
          "limping drive still serves its share of reads) and widen rebuild\n"
          "windows as its streams crawl.  Eviction trades a burst of extra\n"
          "rebuild work for tails back near the healthy baseline.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(FaultFailSlow);

}  // namespace
