// Figure 4 — the effect of failure-detection latency on the probability of
// data loss, under two-way mirroring + FARM, for redundancy groups of 1 to
// 100 GB.
//
//   (a) P(loss) vs detection latency in minutes: smaller groups are much
//       more sensitive, because a fixed latency is a larger share of their
//       (shorter) window of vulnerability.
//   (b) The same data re-binned against the *ratio* of detection latency to
//       recovery time collapses onto one curve — the paper's hypothesis.
#include <algorithm>

#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kSizesGb[] = {1, 5, 10, 25, 50, 100};
constexpr double kLatenciesMin[] = {0, 1, 5, 15, 60};

std::string point_label(double gb, double lat) {
  return util::fmt_fixed(gb, 0) + "GB/" + util::fmt_fixed(lat, 0) + "min";
}

class Fig4DetectionLatency final : public analysis::Scenario {
 public:
  Fig4DetectionLatency()
      : Scenario({"fig4_detection_latency",
                  "Figure 4: failure-detection latency vs reliability",
                  "Xin et al., HPDC 2004, Fig. 4(a)/(b)", 25}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const double gb : kSizesGb) {
      for (const double lat : kLatenciesMin) {
        core::SystemConfig cfg = base_config(opts);
        cfg.group_size = util::gigabytes(gb);
        cfg.detection_latency = util::minutes(lat);
        cfg.stop_at_first_loss = true;
        points.push_back({point_label(gb, lat), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    std::ostringstream os;

    // (a) loss vs latency, one column per group size.
    {
      std::vector<std::string> headers = {"latency (min)"};
      for (const double gb : kSizesGb) {
        headers.push_back(util::fmt_fixed(gb, 0) + " GB");
      }
      util::Table table(headers);
      for (const double lat : kLatenciesMin) {
        std::vector<std::string> row = {util::fmt_fixed(lat, 0)};
        for (const double gb : kSizesGb) {
          row.push_back(util::fmt_percent(
              run.at(point_label(gb, lat)).result.loss_probability(), 1));
        }
        table.add_row(row);
      }
      os << "Fig 4(a): P(data loss) vs detection latency\n" << table << "\n";
    }

    // (b) loss vs latency/recovery-time ratio: rows sorted by ratio should
    // form one monotone curve regardless of group size.
    {
      struct Row {
        double ratio;
        std::string label;
        double loss;
      };
      std::vector<Row> rows;
      for (const double gb : kSizesGb) {
        for (const double lat : kLatenciesMin) {
          const auto& pr = run.at(point_label(gb, lat));
          const double recovery = pr.point.config.block_rebuild_time().value();
          rows.push_back({util::minutes(lat).value() / recovery, pr.point.label,
                          pr.result.loss_probability()});
        }
      }
      std::sort(rows.begin(), rows.end(),
                [](const Row& a, const Row& b) { return a.ratio < b.ratio; });
      util::Table table({"latency/recovery ratio", "config", "P(loss)"});
      for (const Row& r : rows) {
        table.add_row({util::fmt_fixed(r.ratio, 2), r.label,
                       util::fmt_percent(r.loss, 1)});
      }
      os << "Fig 4(b): the ratio of detection latency to recovery time\n"
         << "determines P(loss) (rows sorted by ratio; loss should rise\n"
         << "with ratio, independent of group size)\n"
         << table;
    }
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(Fig4DetectionLatency);

}  // namespace
