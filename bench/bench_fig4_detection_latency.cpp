// Figure 4 — the effect of failure-detection latency on the probability of
// data loss, under two-way mirroring + FARM, for redundancy groups of 1 to
// 100 GB.
//
//   (a) P(loss) vs detection latency in minutes: smaller groups are much
//       more sensitive, because a fixed latency is a larger share of their
//       (shorter) window of vulnerability.
//   (b) The same data re-binned against the *ratio* of detection latency to
//       recovery time collapses onto one curve — the paper's hypothesis.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(25);
  bench::print_header("Figure 4: failure-detection latency vs reliability",
                      "Xin et al., HPDC 2004, Fig. 4(a)/(b)", trials);

  const double sizes_gb[] = {1, 5, 10, 25, 50, 100};
  const double latencies_min[] = {0, 1, 5, 15, 60};

  std::vector<analysis::SweepPoint> points;
  for (const double gb : sizes_gb) {
    for (const double lat : latencies_min) {
      core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
      cfg.group_size = util::gigabytes(gb);
      cfg.detection_latency = util::minutes(lat);
      cfg.stop_at_first_loss = true;
      points.push_back({util::fmt_fixed(gb, 0) + "GB/" +
                            util::fmt_fixed(lat, 0) + "min",
                        cfg});
    }
  }
  const auto results = analysis::run_sweep(points, trials, 0xF16'4000);

  // (a) loss vs latency, one column per group size.
  {
    std::vector<std::string> headers = {"latency (min)"};
    for (const double gb : sizes_gb) {
      headers.push_back(util::fmt_fixed(gb, 0) + " GB");
    }
    util::Table table(headers);
    for (std::size_t li = 0; li < std::size(latencies_min); ++li) {
      std::vector<std::string> row = {util::fmt_fixed(latencies_min[li], 0)};
      for (std::size_t si = 0; si < std::size(sizes_gb); ++si) {
        row.push_back(util::fmt_percent(
            results[si * std::size(latencies_min) + li].result.loss_probability(), 1));
      }
      table.add_row(row);
    }
    std::cout << "Fig 4(a): P(data loss) vs detection latency\n" << table << "\n";
  }

  // (b) loss vs latency/recovery-time ratio: rows sorted by ratio should
  // form one monotone curve regardless of group size.
  {
    struct Row {
      double ratio;
      std::string label;
      double loss;
    };
    std::vector<Row> rows;
    for (std::size_t si = 0; si < std::size(sizes_gb); ++si) {
      for (std::size_t li = 0; li < std::size(latencies_min); ++li) {
        const auto& point = points[si * std::size(latencies_min) + li];
        const double recovery = point.config.block_rebuild_time().value();
        const double ratio = util::minutes(latencies_min[li]).value() / recovery;
        rows.push_back(
            {ratio, point.label,
             results[si * std::size(latencies_min) + li].result.loss_probability()});
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.ratio < b.ratio; });
    util::Table table({"latency/recovery ratio", "config", "P(loss)"});
    for (const Row& r : rows) {
      table.add_row({util::fmt_fixed(r.ratio, 2), r.label,
                     util::fmt_percent(r.loss, 1)});
    }
    std::cout << "Fig 4(b): the ratio of detection latency to recovery time\n"
              << "determines P(loss) (rows sorted by ratio; loss should rise\n"
              << "with ratio, independent of group size)\n"
              << table;
  }
  return 0;
}
