// Figure 3 — probability of data loss with and without FARM, for the six
// redundancy configurations (1/2, 1/3, 2/3, 4/5, 4/6, 8/10), at redundancy
// group sizes of 10 GB (Fig 3a) and 50 GB (Fig 3b), with zero failure
// detection latency, over a six-year mission of the 2 PB base system.
//
// Paper shape to reproduce: FARM improves every scheme; RAID-5-like parity
// (2/3, 4/5) is insufficient without FARM; two-way mirroring lands at 1-3 %
// with FARM vs 6-25 % without; 1/3, 4/6, 8/10 with FARM sit below 0.1 %.
// Group size barely matters with FARM but matters without (smaller worse).
//
// Also prints the §2.3 prose check: recovery redirection touched fewer than
// 8 % of systems over six years.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(40);
  bench::print_header(
      "Figure 3: reliability with and without FARM",
      "Xin et al., HPDC 2004, Fig. 3(a) group=10GB, Fig. 3(b) group=50GB",
      trials);

  double redirection_fraction = 0.0;
  for (const double group_gb : {10.0, 50.0}) {
    std::vector<analysis::SweepPoint> points;
    for (const auto& scheme : erasure::paper_schemes()) {
      for (const auto mode :
           {core::RecoveryMode::kFarm, core::RecoveryMode::kDedicatedSpare}) {
        core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
        cfg.scheme = scheme;
        cfg.group_size = util::gigabytes(group_gb);
        cfg.recovery_mode = mode;
        cfg.detection_latency = util::seconds(0);  // Fig 3 assumption
        cfg.stop_at_first_loss = true;
        points.push_back({scheme.str() + "/" + core::to_string(mode), cfg});
      }
    }
    const auto results = analysis::run_sweep(points, trials, 0xF16'3000 + static_cast<std::uint64_t>(group_gb));

    util::Table table({"scheme", "P(loss) with FARM", "P(loss) w/o FARM",
                       "failures/trial"});
    for (std::size_t i = 0; i < results.size(); i += 2) {
      const auto& farm_r = results[i].result;
      const auto& spare_r = results[i + 1].result;
      table.add_row({points[i].config.scheme.str(), analysis::loss_cell(farm_r),
                     analysis::loss_cell(spare_r),
                     util::fmt_fixed(farm_r.mean_disk_failures, 0)});
      if (points[i].config.scheme.str() == "1/2" && group_gb == 10.0) {
        redirection_fraction = farm_r.frac_trials_with_redirection;
      }
    }
    std::cout << "Fig 3(" << (group_gb == 10.0 ? 'a' : 'b')
              << "): redundancy group size = " << group_gb << " GB\n"
              << table << "\n";
  }

  std::cout << "Recovery redirection touched "
            << util::fmt_percent(redirection_fraction, 1)
            << " of simulated systems (paper §2.3: fewer than 8%)\n";
  return 0;
}
