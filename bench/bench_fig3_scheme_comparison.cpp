// Figure 3 — probability of data loss with and without FARM, for the six
// redundancy configurations (1/2, 1/3, 2/3, 4/5, 4/6, 8/10), with zero
// failure detection latency, over a six-year mission of the 2 PB base
// system.  Registered as two scenarios: fig3a (10 GB redundancy groups) and
// fig3b (50 GB).
//
// Paper shape to reproduce: FARM improves every scheme; RAID-5-like parity
// (2/3, 4/5) is insufficient without FARM; two-way mirroring lands at 1-3 %
// with FARM vs 6-25 % without; 1/3, 4/6, 8/10 with FARM sit below 0.1 %.
// Group size barely matters with FARM but matters without (smaller worse).
//
// fig3a also prints the §2.3 prose check: recovery redirection touched
// fewer than 8 % of systems over six years.
#include <sstream>

#include "analysis/scenario.hpp"
#include "erasure/scheme.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

std::string point_label(const erasure::Scheme& scheme,
                        core::RecoveryMode mode) {
  return scheme.str() + "/" + std::string(core::to_string(mode));
}

class Fig3SchemeComparison final : public analysis::Scenario {
 public:
  Fig3SchemeComparison(char variant, double group_gb)
      : Scenario({std::string("fig3") + variant + "_scheme_comparison",
                  std::string("Figure 3(") + variant +
                      "): reliability with and without FARM, " +
                      util::fmt_fixed(group_gb, 0) + " GB groups",
                  std::string("Xin et al., HPDC 2004, Fig. 3(") + variant + ")",
                  40}),
        variant_(variant),
        group_gb_(group_gb) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const auto& scheme : erasure::paper_schemes()) {
      for (const auto mode :
           {core::RecoveryMode::kFarm, core::RecoveryMode::kDedicatedSpare}) {
        core::SystemConfig cfg = base_config(opts);
        cfg.scheme = scheme;
        cfg.group_size = util::gigabytes(group_gb_);
        cfg.recovery_mode = mode;
        cfg.detection_latency = util::seconds(0);  // Fig 3 assumption
        cfg.stop_at_first_loss = true;
        points.push_back({point_label(scheme, mode), cfg});
      }
    }
    return points;
  }

 protected:
  void execute(const analysis::ScenarioOptions& opts,
               std::uint64_t scenario_seed,
               analysis::ScenarioRun& out) const override {
    Scenario::execute(opts, scenario_seed, out);
    if (variant_ == 'a') {
      const auto& farm_r =
          out.at(point_label(erasure::Scheme{1, 2}, core::RecoveryMode::kFarm));
      out.extra.push_back({"redirection_fraction",
                           farm_r.result.frac_trials_with_redirection});
    }
  }

  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"scheme", "P(loss) with FARM", "P(loss) w/o FARM",
                       "failures/trial"});
    for (const auto& scheme : erasure::paper_schemes()) {
      const auto& farm_r =
          run.at(point_label(scheme, core::RecoveryMode::kFarm)).result;
      const auto& spare_r =
          run.at(point_label(scheme, core::RecoveryMode::kDedicatedSpare))
              .result;
      table.add_row({scheme.str(), analysis::loss_cell(farm_r),
                     analysis::loss_cell(spare_r),
                     util::fmt_fixed(farm_r.mean_disk_failures, 0)});
    }
    std::ostringstream os;
    os << "Fig 3(" << variant_
       << "): redundancy group size = " << util::fmt_fixed(group_gb_, 0)
       << " GB\n"
       << table;
    if (variant_ == 'a' && !run.extra.empty()) {
      os << "\nRecovery redirection touched "
         << util::fmt_percent(run.extra.front().second, 1)
         << " of simulated systems (paper §2.3: fewer than 8%)\n";
    }
    return os.str();
  }

 private:
  char variant_;
  double group_gb_;
};

const analysis::ScenarioRegistrar fig3a_registrar{
    std::make_unique<Fig3SchemeComparison>('a', 10.0)};
const analysis::ScenarioRegistrar fig3b_registrar{
    std::make_unique<Fig3SchemeComparison>('b', 50.0)};

}  // namespace
