// Client extension C2 — the recovery-bandwidth / SLO tradeoff, measured.
//
// The paper's Fig. 5 shows reliability improving with recovery bandwidth;
// the cost side of that curve ("and user requests slow down") is asserted,
// not measured.  This scenario sweeps the recovery cap with FARM on the
// client testbed under the *measured* workload model (WorkloadKind::
// kGenerated): recovery takes what the generated foreground traffic
// actually leaves, and the client pays for whatever recovery holds.  The
// output is the two-sided tradeoff: window of vulnerability shrinking while
// the SLO-violation fraction grows.
#include <sstream>

#include "analysis/scenario.hpp"
#include "client_testbed.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kCapsMB[] = {8.0, 16.0, 24.0, 32.0, 40.0};

std::string cap_label(double mb) {
  return util::fmt_fixed(mb, 0) + " MB/s";
}

class ClientSloTradeoff final : public analysis::Scenario {
 public:
  ClientSloTradeoff()
      : Scenario({"client_slo_tradeoff",
                  "Client: recovery bandwidth vs latency SLO",
                  "extension (cost side of paper Fig. 5)", 5}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const double mb : kCapsMB) {
      core::SystemConfig cfg = bench::client_testbed(opts);
      cfg.recovery_bandwidth = util::mb_per_sec(mb);
      // Recovery adapts to the measured client demand instead of a cosine;
      // a mild diurnal swing on the arrivals gives it something to track.
      cfg.workload.kind = core::WorkloadKind::kGenerated;
      cfg.client.diurnal_amplitude = 0.5;
      points.push_back({cap_label(mb), cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"recovery cap", "mean window", "overall p99",
                       "SLO miss (all)", "SLO miss (rebuild)",
                       "measured demand"});
    for (const double mb : kCapsMB) {
      const analysis::PointResult& r = run.at(cap_label(mb));
      const auto& c = r.result.client;
      std::uint64_t total = 0, misses = 0;
      for (std::size_t i = 0; i < client::kPhaseCount; ++i) {
        total += c.phase_counts[i];
        misses += c.slo_violations[i];
      }
      table.add_row(
          {r.point.label,
           util::to_string(util::Seconds{r.result.mean_window_sec}),
           util::to_string(util::Seconds{c.overall_quantile(0.99)}),
           total > 0
               ? util::fmt_percent(static_cast<double>(misses) /
                                       static_cast<double>(total), 2)
               : "n/a",
           util::fmt_percent(
               c.slo_violation_fraction(client::Phase::kRebuilding), 2),
           util::fmt_percent(c.mean_measured_demand, 1)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: raising the recovery cap shortens the window of\n"
          "vulnerability monotonically, while the SLO-violation fraction\n"
          "during rebuild grows — each rebuild stream holds a larger slice\n"
          "of its disks' time.  Pick the knee, not either end.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(ClientSloTradeoff);

}  // namespace
