// Fault extension F1 — correlated failure bursts against the recovery
// policies.  The paper's disks die independently (plus optional enclosure
// events); real clusters also see shocks — a power sag, a bad firmware
// push, a cooling failure — that kill or degrade several neighbouring
// drives within minutes.  Bursts are the regime declustered recovery was
// built for: FARM spreads the simultaneous rebuilds over the whole
// cluster, while the dedicated spare queues them behind one another.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Policy {
  const char* label;
  core::RecoveryMode mode;
};

constexpr Policy kPolicies[] = {
    {"FARM", core::RecoveryMode::kFarm},
    {"dedicated-spare", core::RecoveryMode::kDedicatedSpare},
};

struct Severity {
  const char* label;
  bool enabled;
  double shock_mtbf_years;
  double kill_fraction;
  double degrade_fraction;
};

constexpr Severity kSeverities[] = {
    {"none", false, 0.0, 0.0, 0.0},
    {"light", true, 1.0, 0.15, 0.25},
    {"heavy", true, 0.1, 0.30, 0.30},
};

class FaultCorrelatedBurst final : public analysis::Scenario {
 public:
  FaultCorrelatedBurst()
      : Scenario({"fault_correlated_burst",
                  "Faults: correlated failure bursts vs. recovery policy",
                  "extension (cf. paper section 2.2 failure correlation)",
                  20}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Policy& p : kPolicies) {
      for (const Severity& s : kSeverities) {
        core::SystemConfig cfg = base_config(opts);
        cfg.recovery_mode = p.mode;
        // Enclosures define the blast radius of a shock; their own
        // destructive events are pushed past the mission so the burst
        // injector is the only correlation source being measured.
        cfg.domains.enabled = true;
        cfg.domains.disks_per_domain = 32;
        cfg.domains.domain_mtbf = util::hours(1e9);
        cfg.domains.rack_aware_placement = true;
        if (s.enabled) {
          cfg.fault.burst.enabled = true;
          cfg.fault.burst.shock_mtbf = util::years(s.shock_mtbf_years);
          cfg.fault.burst.kill_fraction = s.kill_fraction;
          cfg.fault.burst.degrade_fraction = s.degrade_fraction;
          cfg.fault.burst.window = util::minutes(10);
        }
        points.push_back(
            {std::string(p.label) + "/" + s.label, std::move(cfg)});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"policy", "burst", "shocks", "killed", "degraded",
                       "loss", "mean window"});
    for (const Policy& p : kPolicies) {
      for (const Severity& s : kSeverities) {
        const analysis::PointResult& r =
            run.at(std::string(p.label) + "/" + s.label);
        table.add_row(
            {p.label, s.label,
             util::fmt_fixed(r.result.mean_shock_events, 1),
             util::fmt_fixed(r.result.mean_shock_kills, 1),
             util::fmt_fixed(r.result.mean_shock_degraded, 1),
             analysis::loss_cell(r.result),
             util::to_string(util::Seconds{r.result.mean_window_sec})});
      }
    }
    std::ostringstream os;
    os << table
       << "\nExpected: without bursts both policies match the paper's base\n"
          "system.  Under bursts the dedicated spare's loss probability and\n"
          "window grow much faster than FARM's: a shock hands the spare a\n"
          "serialized backlog of whole-disk rebuilds, while FARM fans the\n"
          "same work out across every surviving disk.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(FaultCorrelatedBurst);

}  // namespace
