// Ablation A3 — the recovery-policy lineage the paper traces in §2.4:
// dedicated spare (classic RAID) -> distributed sparing (Menon & Mattson)
// -> FARM.  Reliability plus degraded-mode I/O spread on the 2 PB base
// system.
//
// Expected: distributed sparing scatters rebuild *writes* like FARM, but
// its serial reconstruction stream leaves the window of vulnerability as
// long as the dedicated spare's, so its P(loss) tracks the spare while its
// load spread tracks FARM — precisely the gap that motivates FARM.
#include "bench_common.hpp"

#include <algorithm>
#include <mutex>

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(30);
  bench::print_header("Ablation: dedicated spare vs distributed sparing vs FARM",
                      "paper §2.4 design lineage", trials);

  util::Table table({"recovery policy", "P(loss) [95% CI]", "mean window",
                     "rebuild-write spread (max/mean)", "busiest disk share"});
  for (const auto mode :
       {core::RecoveryMode::kDedicatedSpare, core::RecoveryMode::kDistributedSparing,
        core::RecoveryMode::kFarm}) {
    core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
    cfg.recovery_mode = mode;
    cfg.detection_latency = util::seconds(30);
    cfg.collect_recovery_load = true;

    util::OnlineStats spread;      // per-trial max/mean of write bytes
    util::OnlineStats top_share;   // busiest disk's share of all writes
    std::mutex mu;
    core::MonteCarloOptions opts;
    opts.trials = trials;
    opts.master_seed = 0xAB1'0003 + static_cast<std::uint64_t>(mode);
    opts.observer = [&](std::size_t, const core::TrialResult& r) {
      double total = 0.0, max = 0.0;
      std::size_t active = 0;
      for (const double w : r.recovery_write_bytes) {
        total += w;
        max = std::max(max, w);
        if (w > 0.0) ++active;
      }
      if (total <= 0.0 || active == 0) return;
      std::lock_guard lock(mu);
      spread.add(max / (total / static_cast<double>(r.recovery_write_bytes.size())));
      top_share.add(max / total);
    };
    const core::MonteCarloResult r = core::run_monte_carlo(cfg, opts);

    table.add_row({core::to_string(mode), analysis::loss_cell(r),
                   util::to_string(util::Seconds{r.mean_window_sec}),
                   util::fmt_fixed(spread.mean(), 1) + "x",
                   util::fmt_percent(top_share.mean(), 2)});
  }
  std::cout << table
            << "\nExpected: FARM & distributed sparing spread writes thinly\n"
               "(busiest disk holds a tiny share); the dedicated spare funnels\n"
               "a whole drive into one disk. P(loss): FARM << the other two.\n";
  return 0;
}
