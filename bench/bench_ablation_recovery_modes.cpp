// Ablation A3 — the recovery-policy lineage the paper traces in §2.4:
// dedicated spare (classic RAID) -> distributed sparing (Menon & Mattson)
// -> FARM.  Reliability plus degraded-mode I/O spread on the 2 PB base
// system.
//
// Expected: distributed sparing scatters rebuild *writes* like FARM, but
// its serial reconstruction stream leaves the window of vulnerability as
// long as the dedicated spare's, so its P(loss) tracks the spare while its
// load spread tracks FARM — precisely the gap that motivates FARM.
#include <algorithm>
#include <mutex>

#include <sstream>

#include "analysis/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr core::RecoveryMode kModes[] = {core::RecoveryMode::kDedicatedSpare,
                                         core::RecoveryMode::kDistributedSparing,
                                         core::RecoveryMode::kFarm};

class AblationRecoveryModes final : public analysis::Scenario {
 public:
  AblationRecoveryModes()
      : Scenario({"ablation_recovery_modes",
                  "Ablation: dedicated spare vs distributed sparing vs FARM",
                  "paper §2.4 design lineage", 30}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const auto mode : kModes) {
      core::SystemConfig cfg = base_config(opts);
      cfg.recovery_mode = mode;
      cfg.detection_latency = util::seconds(30);
      cfg.collect_recovery_load = true;
      points.push_back({std::string(core::to_string(mode)), cfg});
    }
    return points;
  }

 protected:
  analysis::PointResult run_point(
      const analysis::SweepPoint& point,
      const core::MonteCarloOptions& mc) const override {
    util::OnlineStats spread;     // per-trial max/mean of write bytes
    util::OnlineStats top_share;  // busiest disk's share of all writes
    std::mutex mu;
    core::MonteCarloOptions opts = mc;
    opts.observer = [&](std::size_t, const core::TrialResult& r) {
      double total = 0.0, max = 0.0;
      std::size_t active = 0;
      for (const double w : r.recovery_write_bytes) {
        total += w;
        max = std::max(max, w);
        if (w > 0.0) ++active;
      }
      if (total <= 0.0 || active == 0) return;
      std::lock_guard lock(mu);
      spread.add(max /
                 (total / static_cast<double>(r.recovery_write_bytes.size())));
      top_share.add(max / total);
    };
    analysis::PointResult pr;
    pr.point = point;
    pr.result = core::run_monte_carlo(point.config, opts);
    pr.extra.push_back({"write_spread_max_over_mean", spread.mean()});
    pr.extra.push_back({"busiest_disk_share", top_share.mean()});
    return pr;
  }

  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"recovery policy", "P(loss) [95% CI]", "mean window",
                       "rebuild-write spread (max/mean)", "busiest disk share"});
    for (const auto mode : kModes) {
      const analysis::PointResult& r = run.at(core::to_string(mode));
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::to_string(util::Seconds{r.result.mean_window_sec}),
                     util::fmt_fixed(r.extra[0].second, 1) + "x",
                     util::fmt_percent(r.extra[1].second, 2)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: FARM & distributed sparing spread writes thinly\n"
          "(busiest disk holds a tiny share); the dedicated spare funnels\n"
          "a whole drive into one disk. P(loss): FARM << the other two.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationRecoveryModes);

}  // namespace
