// Figure 7 — the effect of disk-drive replacement timing on reliability,
// with 95 % confidence intervals.
//
// New disks are installed in batches once the system has lost 20/40/60/80 %
// of its drives.  Fresh batches sit at the infant-mortality end of the
// bathtub (the "cohort effect"), but with 10 GB groups only ~10 % of disks
// fail in six years, so batches are small and the paper finds no visible
// effect: the four bars are flat within their confidence intervals.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(60);
  bench::print_header("Figure 7: batch replacement timing vs reliability",
                      "Xin et al., HPDC 2004, Fig. 7", trials);

  std::vector<analysis::SweepPoint> points;
  for (const double pct : {0.02, 0.04, 0.06, 0.08, -1.0}) {
    core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
    cfg.detection_latency = util::seconds(30);
    cfg.stop_at_first_loss = false;  // batches must keep landing after a loss
    if (pct > 0.0) {
      cfg.replacement.enabled = true;
      cfg.replacement.loss_fraction_threshold = pct;
      points.push_back({util::fmt_percent(pct, 0) + " replacement", cfg});
    } else {
      points.push_back({"no replacement", cfg});
    }
  }
  // Note: the paper replaces at 20-80 % of *failed* disks; with ~11 % of
  // 10,000 disks failing in six years we express the thresholds as the same
  // batch cadence relative to the population (2 %, 4 %, 6 %, 8 % of total),
  // giving the paper's "about five batches at the smallest setting, about
  // one at the largest".
  const auto results = analysis::run_sweep(points, trials, 0xF16'7000);

  util::Table table({"replacement threshold", "P(loss) [95% CI]",
                     "batches/trial", "migrated blocks/trial"});
  for (const auto& r : results) {
    table.add_row({r.point.label, analysis::loss_cell(r.result),
                   util::fmt_fixed(r.result.mean_batches, 1),
                   util::fmt_fixed(r.result.mean_migrated_blocks, 0)});
  }
  std::cout << table
            << "\nExpected shape: all thresholds statistically indistinguishable\n"
               "(overlapping CIs) - no visible cohort effect at 10 GB groups.\n";
  return 0;
}
