// Figure 7 — the effect of disk-drive replacement timing on reliability,
// with 95 % confidence intervals.
//
// New disks are installed in batches once the system has lost 20/40/60/80 %
// of its drives.  Fresh batches sit at the infant-mortality end of the
// bathtub (the "cohort effect"), but with 10 GB groups only ~10 % of disks
// fail in six years, so batches are small and the paper finds no visible
// effect: the four bars are flat within their confidence intervals.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kThresholds[] = {0.02, 0.04, 0.06, 0.08, -1.0};

class Fig7Replacement final : public analysis::Scenario {
 public:
  Fig7Replacement()
      : Scenario({"fig7_replacement",
                  "Figure 7: batch replacement timing vs reliability",
                  "Xin et al., HPDC 2004, Fig. 7", 60}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const double pct : kThresholds) {
      core::SystemConfig cfg = base_config(opts);
      cfg.detection_latency = util::seconds(30);
      cfg.stop_at_first_loss = false;  // batches must keep landing after a loss
      if (pct > 0.0) {
        cfg.replacement.enabled = true;
        cfg.replacement.loss_fraction_threshold = pct;
        points.push_back({util::fmt_percent(pct, 0) + " replacement", cfg});
      } else {
        points.push_back({"no replacement", cfg});
      }
    }
    // Note: the paper replaces at 20-80 % of *failed* disks; with ~11 % of
    // 10,000 disks failing in six years we express the thresholds as the same
    // batch cadence relative to the population (2 %, 4 %, 6 %, 8 % of total),
    // giving the paper's "about five batches at the smallest setting, about
    // one at the largest".
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"replacement threshold", "P(loss) [95% CI]",
                       "batches/trial", "migrated blocks/trial"});
    for (const analysis::PointResult& r : run.points) {
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::fmt_fixed(r.result.mean_batches, 1),
                     util::fmt_fixed(r.result.mean_migrated_blocks, 0)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected shape: all thresholds statistically indistinguishable\n"
          "(overlapping CIs) - no visible cohort effect at 10 GB groups.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(Fig7Replacement);

}  // namespace
