// Fault extension F3 — how good does failure detection have to be?  The
// paper treats detection latency as a constant knob (Fig. 4); a real
// monitor also *misses* heartbeats (false negatives stretch the window of
// vulnerability by whole probe intervals) and *invents* failures (false
// positives launch rebuilds of disks that are fine, burning spare space
// and recovery bandwidth until the accusation times out).
//
// The false-negative sweep runs under common random numbers: every fn
// point reuses the same trial seeds, so the pre-sampled disk lifetimes are
// identical across the sweep and the per-trial windows are monotone in the
// miss rate by construction — the comparison isolates detector quality
// from failure luck.
#include <chrono>
#include <sstream>
#include <string>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr double kFalseNegativeRates[] = {0.0, 0.2, 0.4, 0.6};

struct FpSeries {
  const char* label;
  double mtbf_years;
};

constexpr FpSeries kFalsePositives[] = {
    {"fp-mtbf=2y", 2.0},
    {"fp-mtbf=0.5y", 0.5},
};

std::string fn_label(double rate) {
  return "fn=" + util::fmt_fixed(rate, 1);
}

class FaultDetectorQuality final : public analysis::Scenario {
 public:
  FaultDetectorQuality()
      : Scenario({"fault_detector_quality",
                  "Faults: heartbeat false negatives and false positives",
                  "extension (cf. paper section 3.3 detection latency)",
                  20}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const double rate : kFalseNegativeRates) {
      core::SystemConfig cfg = heartbeat_config(opts);
      cfg.fault.detector.enabled = true;
      cfg.fault.detector.false_negative_rate = rate;
      points.push_back({fn_label(rate), std::move(cfg)});
    }
    for (const FpSeries& s : kFalsePositives) {
      core::SystemConfig cfg = heartbeat_config(opts);
      cfg.fault.detector.enabled = true;
      cfg.fault.detector.false_positive_mtbf = util::years(s.mtbf_years);
      cfg.fault.detector.false_positive_grace = util::minutes(30);
      points.push_back({std::string(s.label), std::move(cfg)});
    }
    return points;
  }

 protected:
  void execute(const analysis::ScenarioOptions& opts,
               std::uint64_t scenario_seed,
               analysis::ScenarioRun& out) const override {
    // Common random numbers for the fn sweep: every fn point runs the same
    // trial seeds (derived from the shared "fn-sweep" label), so disk
    // lifetimes match across the sweep.  The fp points keep the registry's
    // usual label-derived seeds.
    const std::vector<analysis::SweepPoint> points = build_points(opts);
    const std::uint64_t crn_seed =
        analysis::point_seed(scenario_seed, "fn-sweep");
    out.points.reserve(points.size());
    for (const analysis::SweepPoint& p : points) {
      core::MonteCarloOptions mc;
      mc.trials = out.trials;
      mc.master_seed = p.label.rfind("fn=", 0) == 0
                           ? crn_seed
                           : analysis::point_seed(scenario_seed, p.label);
      const auto start = std::chrono::steady_clock::now();
      analysis::PointResult pr = run_point(p, mc);
      pr.seed = mc.master_seed;
      pr.elapsed_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      out.points.push_back(std::move(pr));
      if (opts.progress) opts.progress(p.label);
    }
  }

  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table fn_table(
        {"miss rate", "slips", "mean slip", "mean window", "loss"});
    for (const double rate : kFalseNegativeRates) {
      const analysis::PointResult& r = run.at(fn_label(rate));
      const double slip_mean =
          r.result.mean_detection_slips > 0.0
              ? r.result.mean_detection_slip_sec / r.result.mean_detection_slips
              : 0.0;
      fn_table.add_row(
          {fn_label(rate), util::fmt_fixed(r.result.mean_detection_slips, 1),
           util::to_string(util::Seconds{slip_mean}),
           util::to_string(util::Seconds{r.result.mean_window_sec}),
           analysis::loss_cell(r.result)});
    }
    util::Table fp_table({"false positives", "accusations", "spurious rebuilds",
                          "rolled back", "mean window"});
    for (const FpSeries& s : kFalsePositives) {
      const analysis::PointResult& r = run.at(s.label);
      fp_table.add_row(
          {s.label, util::fmt_fixed(r.result.mean_spurious_detections, 1),
           util::fmt_fixed(r.result.mean_spurious_rebuilds, 1),
           util::fmt_fixed(r.result.mean_spurious_cancelled, 1),
           util::to_string(util::Seconds{r.result.mean_window_sec})});
    }
    std::ostringstream os;
    os << fn_table << "\n"
       << fp_table
       << "\nExpected: under common random numbers the mean window grows\n"
          "monotonically with the miss rate — each missed beat adds a whole\n"
          "heartbeat interval to the window of vulnerability.  False\n"
          "positives waste spare space and recovery bandwidth (spurious\n"
          "rebuilds, all rolled back at the grace deadline) but barely move\n"
          "the window: the accused disks never actually died.\n";
    return os.str();
  }

 private:
  static core::SystemConfig heartbeat_config(
      const analysis::ScenarioOptions& opts) {
    core::SystemConfig cfg = base_config(opts);
    // A long probe interval makes each missed beat expensive relative to
    // queueing noise, so the fn sweep's signal is unambiguous.
    cfg.detector = core::DetectorKind::kHeartbeat;
    cfg.heartbeat_interval = util::minutes(15);
    cfg.detection_latency = util::seconds(30);
    return cfg;
  }
};

FARM_REGISTER_SCENARIO(FaultDetectorQuality);

}  // namespace
