// farm_bench — the one driver for every figure/table reproduction.
//
//   farm_bench --list                 enumerate registered scenarios
//   farm_bench                        run everything (paper defaults)
//   farm_bench --filter 'fig3*'       run a glob-selected subset
//   farm_bench --trials 5 --scale 0.1 quick pass at reduced fidelity
//   farm_bench --seed 42              change the master seed
//   farm_bench --json out/            also write out/<scenario>.json
//   farm_bench --spec run.json        run a composed spec (repeatable)
//   farm_bench --dump-spec fig5_...   print a scenario's equivalent spec
//   farm_bench --swarm 32 --seed 7    invariant-checked random spec sweep
//
// FARM_TRIALS / FARM_SCALE remain as environment fallbacks for the flags.
// Per-point seeds derive from (master seed, scenario name, point label), so
// a filtered run reproduces the full suite's numbers bit-for-bit — and a
// spec that reuses a registered scenario's name and labels reproduces that
// scenario's numbers through the composition path.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"
#include "workload/spec_scenario.hpp"
#include "workload/swarm.hpp"

#ifndef FARM_GIT_DESCRIBE
#define FARM_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace farm;

int usage(std::ostream& os, int exit_code) {
  os << "usage: farm_bench [options]\n"
        "  --list           list registered scenarios and exit\n"
        "  --filter GLOB    run only scenarios matching GLOB (* and ?)\n"
        "  --trials N       Monte-Carlo trials per point (default: per-scenario;\n"
        "                   env fallback FARM_TRIALS)\n"
        "  --scale X        scale the paper's 2 PB base system by X\n"
        "                   (default 1.0; env fallback FARM_SCALE)\n"
        "  --seed S         master seed (default "
     << analysis::kDefaultMasterSeed << ")\n"
        "  --json DIR       write DIR/<scenario>.json for each run\n"
        "  --out PATH       write every run into one combined JSON file\n"
        "  --spec FILE      run the composed spec in FILE (repeatable; without\n"
        "                   an explicit --filter, only the specs run)\n"
        "  --dump-spec NAME print the spec equivalent to scenario NAME and exit\n"
        "  --swarm N        sample and run N random spec combinations, assert\n"
        "                   invariants on each (uses --seed and --trials;\n"
        "                   --out writes the machine-readable report)\n"
        "  --buggify P      with --swarm: enable the deterministic stress layer\n"
        "                   on each combo with probability P in [0, 1] (its own\n"
        "                   seed lane; 0, the default, is bit-identical to a\n"
        "                   run without the flag)\n"
        "  --replay-failures FILE\n"
        "                   re-run only the failing combos of the swarm report\n"
        "                   in FILE via their embedded repro specs (the report's\n"
        "                   own master seed; exit 3 if any still fails)\n"
        "  --threads N      worker threads for the Monte-Carlo trials\n"
        "                   (default: hardware concurrency); results are\n"
        "                   seed-derived, so N never changes the numbers\n"
        "  --timeout-sec T  abandon any scenario still running after T seconds\n"
        "                   (default: no limit); the run is recorded as an\n"
        "                   error and the driver exits nonzero\n"
        "  -h, --help       this message\n";
  return exit_code;
}

struct Args {
  bool list = false;
  std::string filter = "*";
  bool filter_set = false;  // explicit --filter alongside --spec runs both
  std::optional<std::size_t> trials;
  std::optional<double> scale;
  std::uint64_t seed = analysis::kDefaultMasterSeed;
  std::optional<std::string> json_dir;
  std::optional<std::string> out_path;
  std::vector<std::string> spec_paths;
  std::optional<std::string> dump_spec;
  std::optional<std::size_t> swarm;
  double buggify = 0.0;  // swarm per-combo stress enable probability
  std::optional<std::string> replay_failures;
  std::optional<std::size_t> threads;
  double timeout_sec = 0.0;  // 0 = no watchdog
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  const auto next = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "-h" || a == "--help") {
      usage(std::cout, 0);
      return std::nullopt;
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--filter") {
      args.filter = next(i, "--filter");
      args.filter_set = true;
    } else if (a == "--spec") {
      args.spec_paths.emplace_back(next(i, "--spec"));
    } else if (a == "--dump-spec") {
      args.dump_spec = next(i, "--dump-spec");
    } else if (a == "--swarm") {
      const char* v = next(i, "--swarm");
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0) {
        throw std::invalid_argument("--swarm expects a positive integer, got '" +
                                    std::string(v) + "'");
      }
      args.swarm = static_cast<std::size_t>(n);
    } else if (a == "--buggify") {
      const char* v = next(i, "--buggify");
      char* end = nullptr;
      const double p = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(p >= 0.0) || p > 1.0) {
        throw std::invalid_argument(
            "--buggify expects a probability in [0, 1], got '" +
            std::string(v) + "'");
      }
      args.buggify = p;
    } else if (a == "--replay-failures") {
      args.replay_failures = next(i, "--replay-failures");
    } else if (a == "--trials") {
      const char* v = next(i, "--trials");
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0) {
        throw std::invalid_argument("--trials expects a positive integer, got '" +
                                    std::string(v) + "'");
      }
      args.trials = static_cast<std::size_t>(n);
    } else if (a == "--scale") {
      const char* v = next(i, "--scale");
      char* end = nullptr;
      const double x = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(x > 0.0)) {
        throw std::invalid_argument("--scale expects a positive number, got '" +
                                    std::string(v) + "'");
      }
      args.scale = x;
    } else if (a == "--seed") {
      const char* v = next(i, "--seed");
      char* end = nullptr;
      const unsigned long long s = std::strtoull(v, &end, 0);
      if (end == v || *end != '\0') {
        throw std::invalid_argument("--seed expects an integer, got '" +
                                    std::string(v) + "'");
      }
      args.seed = s;
    } else if (a == "--json") {
      args.json_dir = next(i, "--json");
    } else if (a == "--out") {
      args.out_path = next(i, "--out");
    } else if (a == "--threads") {
      const char* v = next(i, "--threads");
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0) {
        throw std::invalid_argument(
            "--threads expects a positive integer, got '" + std::string(v) +
            "'");
      }
      args.threads = static_cast<std::size_t>(n);
    } else if (a == "--timeout-sec") {
      const char* v = next(i, "--timeout-sec");
      char* end = nullptr;
      const double t = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(t > 0.0)) {
        throw std::invalid_argument(
            "--timeout-sec expects a positive number, got '" + std::string(v) +
            "'");
      }
      args.timeout_sec = t;
    } else {
      throw std::invalid_argument("unknown option '" + std::string(a) + "'");
    }
  }
  return args;
}

struct RunOutcome {
  std::optional<analysis::ScenarioRun> run;
  std::string error;     // non-empty on failure
  bool timed_out = false;
};

/// Runs one scenario, converting exceptions into error records and — when a
/// watchdog is armed — abandoning runs that exceed the deadline.  A timed-out
/// scenario's thread cannot be killed portably, so it is detached; main()
/// must then exit via std::_Exit to avoid racing static destructors.
RunOutcome run_scenario(const analysis::Scenario& s,
                        const analysis::ScenarioOptions& opts,
                        double timeout_sec) {
  RunOutcome outcome;
  const auto attempt = [&]() -> RunOutcome {
    RunOutcome r;
    try {
      r.run = s.run(opts);
    } catch (const std::exception& e) {
      r.error = e.what();
    } catch (...) {
      r.error = "unknown exception";
    }
    return r;
  };
  if (timeout_sec <= 0.0) return attempt();

  std::packaged_task<RunOutcome()> task(attempt);
  std::future<RunOutcome> future = task.get_future();
  std::thread worker(std::move(task));
  if (future.wait_for(std::chrono::duration<double>(timeout_sec)) ==
      std::future_status::ready) {
    worker.join();
    return future.get();
  }
  worker.detach();
  outcome.error = "timed out after " + util::fmt_fixed(timeout_sec, 1) + " s";
  outcome.timed_out = true;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> parsed;
  try {
    parsed = parse_args(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "farm_bench: " << e.what() << "\n\n";
    return usage(std::cerr, 2);
  }
  if (!parsed) return 0;  // --help
  const Args& args = *parsed;

  const auto& registry = analysis::ScenarioRegistry::instance();
  if (args.list) {
    util::Table table({"scenario", "title", "reproduces", "default trials"});
    for (const analysis::Scenario* s : registry.all()) {
      table.add_row({s->info().name, s->info().title, s->info().paper_ref,
                     std::to_string(s->info().default_trials)});
    }
    std::cout << table;
    return 0;
  }

  analysis::ScenarioOptions opts;
  try {
    // CLI wins; FARM_TRIALS / FARM_SCALE are validated fallbacks.
    opts.trials = args.trials ? *args.trials : 0;
    if (!args.trials) {
      // Resolved per scenario below (each has its own default); only the env
      // override is global.
      if (const auto env = analysis::resolve_trials(std::nullopt, 0); env > 0) {
        opts.trials = env;
      }
    }
    opts.scale = analysis::resolve_scale(args.scale);
  } catch (const std::invalid_argument& e) {
    std::cerr << "farm_bench: " << e.what() << "\n";
    return 2;
  }
  opts.master_seed = args.seed;

  // The pool outlives every scenario run below; ScenarioOptions carries a
  // raw pointer only.  Null keeps the process-global pool.
  std::unique_ptr<util::ThreadPool> pool;
  if (args.threads) {
    pool = std::make_unique<util::ThreadPool>(*args.threads);
    opts.pool = pool.get();
  }

  if (args.dump_spec) {
    const analysis::Scenario* s = registry.find(*args.dump_spec);
    if (!s) {
      std::cerr << "farm_bench: no scenario named '" << *args.dump_spec
                << "'; available:\n";
      for (const analysis::Scenario* sc : registry.all()) {
        std::cerr << "  " << sc->info().name << "\n";
      }
      return 2;
    }
    try {
      std::cout << workload::spec_to_json(workload::spec_from_scenario(*s, opts));
    } catch (const std::exception& e) {
      std::cerr << "farm_bench: " << e.what() << "\n";
      return 2;
    }
    return 0;
  }

  if (args.replay_failures) {
    // Triage loop closer: re-run exactly the combos the swarm flagged, via
    // their embedded repro specs and the report's own master seed, so a fix
    // is verified against the bytes that failed — not a fresh sample.
    std::ifstream in(*args.replay_failures);
    if (!in) {
      std::cerr << "farm_bench: cannot read '" << *args.replay_failures
                << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::size_t replayed = 0;
    std::size_t still_failing = 0;
    bool detached = false;
    try {
      const util::JsonValue doc = util::JsonValue::parse(text.str());
      analysis::ScenarioOptions ropts = opts;
      ropts.master_seed = std::stoull(doc.at("master_seed").as_string());
      for (const util::JsonValue& r : doc.at("results").as_array()) {
        if (r.at("passed").as_bool()) continue;
        ++replayed;
        const std::string& label = r.at("label").as_string();
        const workload::SpecScenario scenario(
            workload::parse_spec(r.at("repro_spec")));
        const RunOutcome outcome =
            run_scenario(scenario, ropts, args.timeout_sec);
        detached = detached || outcome.timed_out;
        std::size_t failed_checks = 0;
        if (outcome.run) {
          for (const analysis::PointResult& p : outcome.run->points) {
            for (const analysis::CheckOutcome& chk : p.checks) {
              if (chk.passed) continue;
              ++failed_checks;
              std::cerr << "farm_bench: " << label << " still violates '"
                        << chk.name << "': " << chk.detail << "\n";
            }
          }
        } else {
          ++failed_checks;
          std::cerr << "farm_bench: " << label
                    << " replay failed to run: " << outcome.error << "\n";
        }
        if (failed_checks > 0) ++still_failing;
        std::cout << label << ": "
                  << (failed_checks == 0 ? "pass"
                                         : std::to_string(failed_checks) +
                                               " invariant(s) still failing")
                  << "\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "farm_bench: " << *args.replay_failures << ": " << e.what()
                << "\n";
      return 2;
    }
    std::cout << "replayed " << replayed << " failing combo(s), "
              << still_failing << " still failing\n";
    const int code = still_failing > 0 ? 3 : 0;
    if (detached) {
      std::cout.flush();
      std::cerr.flush();
      std::_Exit(code);
    }
    return code;
  }

  if (args.swarm) {
    workload::SwarmOptions sopts;
    sopts.combos = *args.swarm;
    sopts.master_seed = args.seed;
    if (opts.trials > 0) sopts.trials = opts.trials;
    sopts.pool = opts.pool;
    sopts.buggify_probability = args.buggify;
    const workload::SwarmReport report = workload::run_swarm(sopts);

    util::Table table({"combo", "config", "loss", "invariants"});
    for (const workload::SwarmComboResult& c : report.combos) {
      table.add_row({c.label, c.summary,
                     std::to_string(c.trials_with_loss) + "/" +
                         std::to_string(c.trials),
                     c.passed ? "pass" : "FAIL"});
    }
    std::cout << "=== swarm: " << report.combos.size() << " combos, "
              << report.trials << " trials each, master seed "
              << report.master_seed << " ===\n\n"
              << table << "\ndigest: " << report.digest << "\n";
    for (const workload::SwarmComboResult& c : report.combos) {
      for (const analysis::CheckOutcome& chk : c.checks) {
        if (!chk.passed) {
          std::cerr << "farm_bench: " << c.label << " violated '" << chk.name
                    << "': " << chk.detail << "\n";
        }
      }
    }
    if (args.out_path) {
      std::ofstream out(*args.out_path);
      if (!out) {
        std::cerr << "farm_bench: cannot write '" << *args.out_path << "'\n";
        return 2;
      }
      out << workload::to_json(report, FARM_GIT_DESCRIBE);
      if (!out.flush()) {
        std::cerr << "farm_bench: error writing '" << *args.out_path << "'\n";
        return 2;
      }
      std::cout << "wrote " << *args.out_path << "\n";
    }
    if (report.combos_failed > 0) {
      std::cerr << "farm_bench: " << report.combos_failed << " of "
                << report.combos.size()
                << " combos violated invariants (replay any combo with its "
                   "repro_spec from the report and the same --seed)\n";
      return 3;
    }
    return 0;
  }

  // Specs compose into Scenario instances and flow through the same loop as
  // registry scenarios.  Without an explicit --filter, --spec runs only the
  // specs (the registry default glob would drag the whole suite along).
  std::vector<std::unique_ptr<workload::SpecScenario>> spec_scenarios;
  for (const std::string& path : args.spec_paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "farm_bench: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      spec_scenarios.push_back(std::make_unique<workload::SpecScenario>(
          workload::parse_spec_text(text.str())));
    } catch (const std::exception& e) {
      std::cerr << "farm_bench: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }

  std::vector<const analysis::Scenario*> selected;
  if (args.spec_paths.empty() || args.filter_set) {
    selected = registry.match(args.filter);
    if (selected.empty() && spec_scenarios.empty()) {
      std::cerr << "farm_bench: no scenario matches '" << args.filter
                << "'; available:\n";
      for (const analysis::Scenario* s : registry.all()) {
        std::cerr << "  " << s->info().name << "\n";
      }
      return 1;
    }
  }
  for (const auto& s : spec_scenarios) selected.push_back(s.get());

  if (args.json_dir) {
    std::error_code ec;
    std::filesystem::create_directories(*args.json_dir, ec);
    if (ec) {
      std::cerr << "farm_bench: cannot create '" << *args.json_dir
                << "': " << ec.message() << "\n";
      return 2;
    }
  }

  // Open --out before running anything: an unwritable path should fail in
  // milliseconds, not after minutes of Monte-Carlo.
  std::ofstream combined_out;
  if (args.out_path) {
    combined_out.open(*args.out_path);
    if (!combined_out) {
      std::cerr << "farm_bench: cannot write '" << *args.out_path << "'\n";
      return 2;
    }
  }

  std::vector<analysis::ScenarioRun> runs;
  std::vector<analysis::ScenarioError> errors;
  bool detached_worker = false;
  const auto write_scenario_json = [&](const std::string& name,
                                       const std::string& doc) -> bool {
    const std::filesystem::path path =
        std::filesystem::path(*args.json_dir) / (name + ".json");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "farm_bench: cannot write '" << path.string() << "'\n";
      return false;
    }
    out << doc;
    std::cout << "wrote " << path.string() << "\n\n";
    return true;
  };

  for (const analysis::Scenario* s : selected) {
    RunOutcome outcome = run_scenario(*s, opts, args.timeout_sec);
    detached_worker = detached_worker || outcome.timed_out;
    if (!outcome.run) {
      const analysis::ScenarioError error{s->info().name, outcome.error};
      std::cerr << "farm_bench: scenario '" << error.name
                << "' failed: " << error.message << "\n";
      if (args.json_dir &&
          !write_scenario_json(
              error.name, analysis::to_json_error(error, FARM_GIT_DESCRIBE))) {
        return 2;
      }
      errors.push_back(error);
      continue;
    }
    analysis::ScenarioRun& run = *outcome.run;
    std::cout << "=== " << run.title << " [" << run.name << "] ===\n"
              << "Reproduces: " << run.paper_ref << "\n"
              << "trials/point: " << run.trials << "  scale: " << run.scale
              << "  master seed: " << run.master_seed << "\n\n"
              << run.rendered << "\n[" << run.name << ": "
              << run.points.size() << " points, "
              << util::fmt_fixed(run.elapsed_sec, 1) << " s]\n\n";

    if (args.json_dir &&
        !write_scenario_json(run.name,
                             analysis::to_json(run, FARM_GIT_DESCRIBE))) {
      return 2;
    }
    if (args.out_path) runs.push_back(std::move(run));
  }

  if (args.out_path) {
    combined_out << analysis::to_json_combined(runs, errors, FARM_GIT_DESCRIBE);
    combined_out.flush();
    if (!combined_out) {
      std::cerr << "farm_bench: error writing '" << *args.out_path << "'\n";
      return 2;
    }
    std::cout << "wrote " << *args.out_path << "\n";
  }
  const int exit_code = errors.empty() ? 0 : 3;
  if (detached_worker) {
    // An abandoned scenario thread is still touching the registry; skip
    // static destruction rather than race it.
    std::cout.flush();
    std::cerr.flush();
    std::_Exit(exit_code);
  }
  return exit_code;
}
