// Ablation A2 — FARM's recovery-target selection rules (§2.3).
//
// The paper prescribes: (b) skip disks already holding a buddy of the
// group, (c) respect the spare-space reservation, prefer lightly-loaded
// targets, and avoid S.M.A.R.T.-flagged disks.  This bench disables each
// rule in turn on the 2 PB base system.  The buddy rule is the load-bearing
// one: without it a rebuilt replica can land next to its partner, halving
// the effective fault tolerance of that group.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(40);
  bench::print_header("Ablation: FARM target-selection rules",
                      "paper §2.3 rules (a)-(c) + load + SMART", trials);

  struct Variant {
    const char* label;
    void (*tweak)(core::SystemConfig&);
  };
  const Variant variants[] = {
      {"all rules (paper)", [](core::SystemConfig&) {}},
      {"no buddy rule",
       [](core::SystemConfig& c) { c.target_rules.skip_buddies = false; }},
      {"no reservation ceiling",
       [](core::SystemConfig& c) { c.target_rules.honor_reservation = false; }},
      {"no load preference",
       [](core::SystemConfig& c) { c.target_rules.prefer_low_load = false; }},
      {"no SMART avoidance",
       [](core::SystemConfig& c) { c.target_rules.avoid_suspect = false; }},
      {"SMART disabled entirely",
       [](core::SystemConfig& c) { c.smart.enabled = false; }},
  };

  std::vector<analysis::SweepPoint> points;
  for (const Variant& v : variants) {
    core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
    cfg.detection_latency = util::seconds(30);
    cfg.stop_at_first_loss = true;
    v.tweak(cfg);
    points.push_back({v.label, cfg});
  }
  const auto results = analysis::run_sweep(points, trials, 0xAB1'0002);

  util::Table table({"variant", "P(loss) [95% CI]", "redirections/trial",
                     "stalls/trial"});
  for (const auto& r : results) {
    table.add_row({r.point.label, analysis::loss_cell(r.result),
                   util::fmt_fixed(r.result.mean_redirections, 2),
                   util::fmt_fixed(r.result.mean_stalls, 2)});
  }
  std::cout << table
            << "\nExpected: dropping the buddy rule hurts most; the others are\n"
               "second-order at base parameters.\n";
  return 0;
}
