// Ablation A2 — FARM's recovery-target selection rules (§2.3).
//
// The paper prescribes: (b) skip disks already holding a buddy of the
// group, (c) respect the spare-space reservation, prefer lightly-loaded
// targets, and avoid S.M.A.R.T.-flagged disks.  This scenario disables each
// rule in turn on the 2 PB base system.  The buddy rule is the load-bearing
// one: without it a rebuilt replica can land next to its partner, halving
// the effective fault tolerance of that group.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

struct Variant {
  const char* label;
  void (*tweak)(core::SystemConfig&);
};

constexpr Variant kVariants[] = {
    {"all rules (paper)", [](core::SystemConfig&) {}},
    {"no buddy rule",
     [](core::SystemConfig& c) { c.target_rules.skip_buddies = false; }},
    {"no reservation ceiling",
     [](core::SystemConfig& c) { c.target_rules.honor_reservation = false; }},
    {"no load preference",
     [](core::SystemConfig& c) { c.target_rules.prefer_low_load = false; }},
    {"no SMART avoidance",
     [](core::SystemConfig& c) { c.target_rules.avoid_suspect = false; }},
    {"SMART disabled entirely",
     [](core::SystemConfig& c) { c.smart.enabled = false; }},
};

class AblationTargetSelection final : public analysis::Scenario {
 public:
  AblationTargetSelection()
      : Scenario({"ablation_target_selection",
                  "Ablation: FARM target-selection rules",
                  "paper §2.3 rules (a)-(c) + load + SMART", 40}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const Variant& v : kVariants) {
      core::SystemConfig cfg = base_config(opts);
      cfg.detection_latency = util::seconds(30);
      cfg.stop_at_first_loss = true;
      v.tweak(cfg);
      points.push_back({v.label, cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"variant", "P(loss) [95% CI]", "redirections/trial",
                       "stalls/trial"});
    for (const Variant& v : kVariants) {
      const analysis::PointResult& r = run.at(v.label);
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::fmt_fixed(r.result.mean_redirections, 2),
                     util::fmt_fixed(r.result.mean_stalls, 2)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: dropping the buddy rule hurts most; the others are\n"
          "second-order at base parameters.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationTargetSelection);

}  // namespace
