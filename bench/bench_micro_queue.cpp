// Micro-benchmark: client-I/O primitives.  A client testbed trial pushes
// millions of requests through ServiceQueue::enqueue and LatencyRecorder;
// these numbers bound the client subsystem's share of a trial.
#include <benchmark/benchmark.h>

#include "client/client_config.hpp"
#include "client/latency_recorder.hpp"
#include "client/request_generator.hpp"
#include "client/service_queue.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

void BM_ServiceQueueEnqueue(benchmark::State& state) {
  client::ServiceQueue q{disk::DiskParameters{}};
  const util::Bytes bytes = util::megabytes(4);
  double now = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue(now, bytes));
    now += 0.01;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LogHistogramAdd(benchmark::State& state) {
  util::LogHistogram h = client::make_latency_histogram();
  util::Xoshiro256 rng{17};
  for (auto _ : state) {
    h.add(rng.exponential(50.0));
  }
  benchmark::DoNotOptimize(h.total());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LogHistogramQuantile(benchmark::State& state) {
  util::LogHistogram h = client::make_latency_histogram();
  util::Xoshiro256 rng{23};
  for (int i = 0; i < 100000; ++i) h.add(rng.exponential(50.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.quantile(0.99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RequestGeneratorNext(benchmark::State& state) {
  client::ClientConfig cfg;
  cfg.enabled = true;
  cfg.diurnal_amplitude = 0.5;
  client::RequestGenerator gen{cfg, 31, 4096};
  double now = 0.0;
  for (auto _ : state) {
    now += gen.next_interarrival(util::Seconds{now}, 100).value();
    benchmark::DoNotOptimize(gen.next_request());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LatencyRecorderRecord(benchmark::State& state) {
  client::LatencyRecorder rec{util::seconds(0.25)};
  util::Xoshiro256 rng{37};
  for (auto _ : state) {
    rec.record(client::Phase::kHealthy, rng.exponential(50.0));
  }
  benchmark::DoNotOptimize(rec.count(client::Phase::kHealthy));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_ServiceQueueEnqueue);
BENCHMARK(BM_LogHistogramAdd);
BENCHMARK(BM_LogHistogramQuantile);
BENCHMARK(BM_RequestGeneratorNext);
BENCHMARK(BM_LatencyRecorderRecord);

}  // namespace

BENCHMARK_MAIN();
