// Fleet lifecycle scenarios (extension beyond the paper).
//
// The paper's fleet is static; these sweeps grow, shrink, and rebalance it
// mid-mission while the natural failure stream keeps recovery busy.  The
// rebalance engine's migration flows share destination queues with rebuild
// transfers, so every point reports how much data the placement change
// warranted (the theoretical minimum), how much was planned, and how much
// actually landed.
#include <algorithm>
#include <cstddef>
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

/// Planned movement over the weight-change minimum; 1.0 = RUSH moved
/// exactly what the reweighting warranted.
double movement_ratio(const core::MonteCarloResult& r) {
  return r.mean_changed_weight_bytes > 0.0
             ? r.mean_planned_move_bytes / r.mean_changed_weight_bytes
             : 0.0;
}

std::string gb(double bytes) {
  return util::to_string(util::Bytes{bytes});
}

/// Expansion sized as a fraction of the live fleet, so the sweep keeps its
/// meaning at any --scale.
std::size_t batch_size(const core::SystemConfig& cfg, double fraction) {
  const auto disks = static_cast<double>(cfg.disk_count());
  return std::max<std::size_t>(1, static_cast<std::size_t>(disks * fraction));
}

class FleetExpandUnderFire final : public analysis::Scenario {
 public:
  FleetExpandUnderFire()
      : Scenario({"fleet_expand_under_fire",
                  "Fleet expansion racing recovery traffic", "extension", 20}) {
  }

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    struct Row {
      const char* label;
      double fraction;  // of the initial fleet
    };
    constexpr Row kRows[] = {
        {"no expansion", 0.0},
        {"+5% rack", 0.05},
        {"+20% rack", 0.20},
        {"+50% rack", 0.50},
    };
    std::vector<analysis::SweepPoint> points;
    for (const Row& row : kRows) {
      core::SystemConfig cfg = base_config(opts);
      cfg.stop_at_first_loss = false;  // the fleet keeps living after a loss
      if (row.fraction > 0.0) {
        fleet::LifecycleEvent e;
        e.kind = fleet::LifecycleKind::kExpand;
        e.at = util::years(1);
        e.count = batch_size(cfg, row.fraction);
        e.weight = 1.0;
        cfg.fleet.events.push_back(e);
      }
      points.push_back({row.label, cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"expansion", "P(loss) [95% CI]", "planned moves",
                       "completed", "moved", "movement ratio"});
    for (const analysis::PointResult& r : run.points) {
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::fmt_fixed(r.result.mean_migrations_planned, 0),
                     util::fmt_fixed(r.result.mean_migrations_completed, 0),
                     gb(r.result.mean_moved_bytes),
                     util::fmt_fixed(movement_ratio(r.result), 3)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected shape: planned movement grows with the expansion "
          "fraction\n(RUSH moves ~weight-fraction of the data, ratio near "
          "1.0), while the\nloss probability stays statistically flat - "
          "rebalance traffic shares\nqueues with rebuilds but never "
          "preempts them.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(FleetExpandUnderFire);

class FleetDecommissionDrain final : public analysis::Scenario {
 public:
  FleetDecommissionDrain()
      : Scenario({"fleet_decommission_drain",
                  "Planned decommission against a drain deadline", "extension",
                  20}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    struct Row {
      const char* label;
      double migration_mb_s;
    };
    constexpr Row kRows[] = {
        {"2 MB/s migration", 2.0},
        {"8 MB/s migration", 8.0},
        {"32 MB/s migration", 32.0},
    };
    std::vector<analysis::SweepPoint> points;
    for (const Row& row : kRows) {
      core::SystemConfig cfg = base_config(opts);
      cfg.stop_at_first_loss = false;
      cfg.fleet.migration_bandwidth = util::mb_per_sec(row.migration_mb_s);
      fleet::LifecycleEvent grow;
      grow.kind = fleet::LifecycleKind::kExpand;
      grow.at = util::years(0.5);
      grow.count = batch_size(cfg, 0.10);
      grow.weight = 1.0;
      cfg.fleet.events.push_back(grow);
      fleet::LifecycleEvent drain;
      drain.kind = fleet::LifecycleKind::kDecommission;
      drain.at = util::years(3);
      drain.cluster = 1;  // the rack added above
      // Tight enough that the per-destination migration cap decides the
      // outcome: ~37 GB lands on each destination queue, so 2 MB/s needs
      // ~5 h and misses while 32 MB/s finishes with hours to spare.
      drain.drain_deadline = util::hours(3);
      cfg.fleet.events.push_back(drain);
      points.push_back({row.label, cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"migration cap", "P(loss) [95% CI]", "drained",
                       "deadline misses", "residual blocks", "disks retired"});
    for (const analysis::PointResult& r : run.points) {
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     gb(r.result.mean_drained_bytes),
                     util::fmt_fixed(r.result.mean_drain_deadline_misses, 2),
                     util::fmt_fixed(r.result.mean_drain_residual_blocks, 1),
                     util::fmt_fixed(r.result.mean_fleet_disks_retired, 1)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected shape: faster migration caps drain the doomed rack "
          "sooner\n(fewer 3-hour deadline misses, fewer residual blocks at "
          "the deadline);\ndrained bytes and retired disks stay roughly "
          "constant - the rack holds\nthe same data and eventually empties "
          "either way.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(FleetDecommissionDrain);

class FleetMixedGenerations final : public analysis::Scenario {
 public:
  FleetMixedGenerations()
      : Scenario({"fleet_mixed_generations",
                  "Heterogeneous expansion generations and placement weight",
                  "extension", 20}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    // Two yearly refreshes: generation 2 doubles the capacity per spindle,
    // generation 3 doubles it again and is faster.  The sweep contrasts
    // weighting the new disks like the old ones (capacity stranded) with
    // weighting them by capacity (utilization-balanced).
    for (const bool capacity_weighted : {false, true}) {
      core::SystemConfig cfg = base_config(opts);
      cfg.stop_at_first_loss = false;
      fleet::LifecycleEvent gen2;
      gen2.kind = fleet::LifecycleKind::kExpand;
      gen2.at = util::years(1);
      gen2.count = batch_size(cfg, 0.10);
      gen2.capacity = cfg.disk.capacity * 2.0;
      gen2.weight = capacity_weighted ? 2.0 : 1.0;
      cfg.fleet.events.push_back(gen2);
      fleet::LifecycleEvent gen3;
      gen3.kind = fleet::LifecycleKind::kExpand;
      gen3.at = util::years(2);
      gen3.count = batch_size(cfg, 0.10);
      gen3.capacity = cfg.disk.capacity * 4.0;
      gen3.bandwidth = cfg.disk.bandwidth * 1.5;
      gen3.weight = capacity_weighted ? 4.0 : 1.0;
      cfg.fleet.events.push_back(gen3);
      points.push_back(
          {capacity_weighted ? "capacity-weighted" : "equal-weighted", cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"weighting", "P(loss) [95% CI]", "disks added",
                       "planned moves", "moved", "movement ratio"});
    for (const analysis::PointResult& r : run.points) {
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::fmt_fixed(r.result.mean_fleet_disks_added, 0),
                     util::fmt_fixed(r.result.mean_migrations_planned, 0),
                     gb(r.result.mean_moved_bytes),
                     util::fmt_fixed(movement_ratio(r.result), 3)});
    }
    std::ostringstream os;
    os << table
       << "\nExpected shape: capacity-weighted generations pull "
          "proportionally\nmore data onto the dense new disks (higher "
          "planned movement at the\nsame ~1.0 ratio to the theoretical "
          "minimum); equal weighting moves\nless but strands the extra "
          "capacity.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(FleetMixedGenerations);

}  // namespace
