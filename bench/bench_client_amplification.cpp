// Client extension C3 — degraded-read amplification across erasure schemes.
//
// Reconstructing one lost block of a k+m MDS code reads k surviving blocks:
// a degraded read of x bytes costs k*x bytes of disk I/O (Sathiamoorthy et
// al.'s k-fold amplification).  This scenario measures the pooled
// reconstruction-bytes / degraded-user-bytes ratio on the client testbed
// for schemes of growing k and checks it lands on k; the cross-rack share
// of that traffic is reported alongside (topology enabled so the fan-out
// crosses the fabric).
#include <sstream>
#include <string>

#include "analysis/scenario.hpp"
#include "client_testbed.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr erasure::Scheme kSchemes[] = {{1, 2}, {2, 3}, {4, 5}, {8, 10}};

std::string scheme_label(const erasure::Scheme& s) {
  return std::to_string(s.data_blocks) + "/" + std::to_string(s.total_blocks);
}

class ClientAmplification final : public analysis::Scenario {
 public:
  ClientAmplification()
      : Scenario({"client_amplification",
                  "Client: degraded-read amplification vs erasure scheme",
                  "extension (cf. Sathiamoorthy et al., VLDB '13)", 5}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const erasure::Scheme& s : kSchemes) {
      core::SystemConfig cfg = bench::client_testbed(opts);
      cfg.scheme = s;
      // Shorter MTTF than the shared testbed: amplification needs degraded
      // reads, so make sure every trial sees failures.
      cfg.exponential_mttf = util::hours(100);
      // Route reconstruction fan-out across a fabric so the cross-rack
      // share is meaningful.
      cfg.topology.enabled = true;
      cfg.topology.disks_per_node = 4;
      cfg.topology.nodes_per_rack = 4;
      cfg.topology.nic_bandwidth = util::mb_per_sec(256);
      cfg.topology.oversubscription = 4.0;
      points.push_back({scheme_label(s), cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"scheme", "k", "degraded reads", "amplification",
                       "cross-rack share", "degraded p99"});
    for (const erasure::Scheme& s : kSchemes) {
      const analysis::PointResult& r = run.at(scheme_label(s));
      const auto& c = r.result.client;
      // Pooled cross-rack share of reconstruction traffic, from extras.
      double cross_share = 0.0;
      for (const auto& [k, v] : r.extra) {
        if (k == "cross_rack_reconstruction_share") cross_share = v;
      }
      table.add_row(
          {r.point.label, std::to_string(s.data_blocks),
           util::fmt_fixed(c.mean_degraded_reads, 0),
           util::fmt_fixed(c.read_amplification, 2),
           util::fmt_percent(cross_share, 1),
           util::to_string(
               util::Seconds{c.quantile(client::Phase::kDegraded, 0.99)})});
    }
    std::ostringstream os;
    os << table
       << "\nExpected: amplification = k exactly wherever degraded reads\n"
          "occurred (k sub-reads of the requested bytes per reconstruction),\n"
          "0.00 only if a point saw no failures.  Degraded p99 grows with k\n"
          "— the request waits for the slowest of k queues.\n";
    return os.str();
  }

  analysis::PointResult run_point(
      const analysis::SweepPoint& point,
      const core::MonteCarloOptions& mc) const override {
    // The aggregate keeps the amplification ratio but not the cross-rack
    // byte split, so pool it per trial (the harness serializes observer
    // calls).
    double cross = 0.0, total = 0.0;
    core::MonteCarloOptions observed = mc;
    observed.observer = [&](std::size_t, const core::TrialResult& r) {
      cross += r.client.cross_rack_reconstruction_bytes;
      total += r.client.reconstruction_disk_bytes;
    };
    analysis::PointResult pr;
    pr.point = point;
    pr.result = core::run_monte_carlo(point.config, observed);
    pr.extra.emplace_back("cross_rack_reconstruction_share",
                          total > 0.0 ? cross / total : 0.0);
    return pr;
  }
};

FARM_REGISTER_SCENARIO(ClientAmplification);

}  // namespace
