// Micro-benchmark: discrete-event engine primitives.  A full 2 PB mission
// executes ~100k events; these numbers bound the engine's share of a trial.
#include <benchmark/benchmark.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace {

using namespace farm::sim;
using farm::util::Seconds;

void BM_ScheduleAndPop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  farm::util::Xoshiro256 rng{7};
  for (auto _ : state) {
    EventQueue q;
    for (std::size_t i = 0; i < depth; ++i) {
      q.schedule(Seconds{rng.uniform() * 1e6}, [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}

void BM_CancelHeavy(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  farm::util::Xoshiro256 rng{11};
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(depth);
    for (std::size_t i = 0; i < depth; ++i) {
      handles.push_back(q.schedule(Seconds{rng.uniform() * 1e6}, [] {}));
    }
    for (std::size_t i = 0; i < depth; i += 2) q.cancel(handles[i]);
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}

void BM_SimulatorChain(benchmark::State& state) {
  const auto depth = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    std::int64_t remaining = depth;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.schedule_in(Seconds{1.0}, next);
    };
    sim.schedule_in(Seconds{1.0}, next);
    sim.run_until(Seconds{1e18});
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}

}  // namespace

BENCHMARK(BM_ScheduleAndPop)->Arg(1000)->Arg(100000);
BENCHMARK(BM_CancelHeavy)->Arg(1000)->Arg(100000);
BENCHMARK(BM_SimulatorChain)->Arg(10000);

BENCHMARK_MAIN();
