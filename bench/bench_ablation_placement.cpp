// Ablation A1 — placement policy.
//
// The paper relies on RUSH for balanced, decorrelated placement (§2.2).
// This ablation swaps in two alternatives on the 2 PB base system with
// FARM:
//   * random  - uniform hashing, no weighted clusters / minimal migration;
//   * chained - Petal-style chained declustering, where a group's blocks sit
//               on neighbouring ring positions, concentrating risk.
// Reliability should be comparable for rush/random (both spread risk) while
// chained declustering concentrates buddy pairs on ring neighbours, making
// each failure's blast radius smaller but each double-failure deadlier.
#include <sstream>

#include "analysis/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

class AblationPlacement final : public analysis::Scenario {
 public:
  AblationPlacement()
      : Scenario({"ablation_placement", "Ablation: placement policy under FARM",
                  "design choice, paper §2.2 (RUSH)", 40}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    // straw2 is excluded here: its candidate lookup is O(#disks) (every disk
    // draws a straw), which is fine for CRUSH-style bucket hierarchies but
    // ~50x too slow for flat 10,000-disk per-block lookups at this scale.
    // Its placement properties are covered by tests/placement_test.cpp and a
    // small-scale entry in bench_micro_placement.
    std::vector<analysis::SweepPoint> points;
    for (const auto kind :
         {placement::PolicyKind::kRush, placement::PolicyKind::kRandom,
          placement::PolicyKind::kChained}) {
      core::SystemConfig cfg = base_config(opts);
      cfg.placement = kind;
      cfg.detection_latency = util::seconds(30);
      cfg.stop_at_first_loss = true;
      points.push_back({std::string(placement::to_string(kind)), cfg});
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"placement", "P(loss) [95% CI]", "rebuilds/trial",
                       "redirections/trial"});
    for (const analysis::PointResult& r : run.points) {
      table.add_row({r.point.label, analysis::loss_cell(r.result),
                     util::fmt_fixed(r.result.mean_rebuilds, 0),
                     util::fmt_fixed(r.result.mean_redirections, 2)});
    }
    std::ostringstream os;
    os << table;
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationPlacement);

}  // namespace
