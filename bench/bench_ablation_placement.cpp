// Ablation A1 — placement policy.
//
// The paper relies on RUSH for balanced, decorrelated placement (§2.2).
// This ablation swaps in two alternatives on the 2 PB base system with
// FARM:
//   * random  - uniform hashing, no weighted clusters / minimal migration;
//   * chained - Petal-style chained declustering, where a group's blocks sit
//               on neighbouring ring positions, concentrating risk.
// Reliability should be comparable for rush/random (both spread risk) while
// chained declustering concentrates buddy pairs on ring neighbours, making
// each failure's blast radius smaller but each double-failure deadlier.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(40);
  bench::print_header("Ablation: placement policy under FARM",
                      "design choice, paper §2.2 (RUSH)", trials);

  // straw2 is excluded here: its candidate lookup is O(#disks) (every disk
  // draws a straw), which is fine for CRUSH-style bucket hierarchies but
  // ~50x too slow for flat 10,000-disk per-block lookups at this scale.
  // Its placement properties are covered by tests/placement_test.cpp and a
  // small-scale entry in bench_micro_placement.
  std::vector<analysis::SweepPoint> points;
  for (const auto kind : {placement::PolicyKind::kRush, placement::PolicyKind::kRandom,
                          placement::PolicyKind::kChained}) {
    core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
    cfg.placement = kind;
    cfg.detection_latency = util::seconds(30);
    cfg.stop_at_first_loss = true;
    points.push_back({placement::to_string(kind), cfg});
  }
  const auto results = analysis::run_sweep(points, trials, 0xAB1'0001);

  util::Table table({"placement", "P(loss) [95% CI]", "rebuilds/trial",
                     "redirections/trial"});
  for (const auto& r : results) {
    table.add_row({r.point.label, analysis::loss_cell(r.result),
                   util::fmt_fixed(r.result.mean_rebuilds, 0),
                   util::fmt_fixed(r.result.mean_redirections, 2)});
  }
  std::cout << table;
  return 0;
}
