// Ablation A6 — correlated enclosure failures and rack-aware placement.
//
// Paper §2.2: "placement and support services to the disk introduce common
// failure causes such as a localized failure in the cooling system."  This
// scenario adds destructive enclosure events (64-disk domains) to the 2 PB
// base system and compares domain-oblivious against rack-aware placement,
// under FARM, for two-way mirroring and 4/6.
#include <algorithm>
#include <sstream>

#include "analysis/scenario.hpp"
#include "erasure/scheme.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr const char* kSchemes[] = {"1/2", "4/6"};

std::string point_label(const char* scheme, bool aware) {
  return std::string(scheme) + "/" + (aware ? "rack-aware" : "oblivious");
}

class AblationDomains final : public analysis::Scenario {
 public:
  AblationDomains()
      : Scenario({"ablation_domains",
                  "Ablation: correlated enclosure failures",
                  "paper §2.2 common failure causes (extension)", 30}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const char* scheme : kSchemes) {
      for (const bool aware : {false, true}) {
        core::SystemConfig cfg = base_config(opts);
        cfg.scheme = erasure::Scheme::parse(scheme);
        cfg.detection_latency = util::seconds(30);
        cfg.domains.enabled = true;
        // 64 disks per enclosure at full scale; shrink enclosures on scaled-
        // down systems so rack-aware placement still has enough domains to
        // spread a group across.
        cfg.domains.disks_per_domain =
            std::max<std::size_t>(1, std::min<std::uint64_t>(64, cfg.disk_count() / 16));
        // ~1 enclosure event per system per decade of enclosure-hours:
        // with ~156 enclosures, a handful of events per 6-year mission.
        cfg.domains.domain_mtbf = util::hours(2.0e6);
        cfg.domains.rack_aware_placement = aware;
        cfg.stop_at_first_loss = false;
        points.push_back({point_label(scheme, aware), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"scheme", "placement", "P(loss) [95% CI]",
                       "enclosure events/trial"});
    for (const char* scheme : kSchemes) {
      for (const bool aware : {false, true}) {
        const auto& r = run.at(point_label(scheme, aware)).result;
        table.add_row({scheme, aware ? "rack-aware" : "oblivious",
                       analysis::loss_cell(r),
                       util::fmt_fixed(r.mean_domain_failures, 1)});
      }
    }
    std::ostringstream os;
    os << table
       << "\nExpected: oblivious placement loses data whenever an enclosure\n"
          "event catches a group with two blocks in that enclosure;\n"
          "rack-aware placement reduces each event to ordinary single-block\n"
          "recoveries.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationDomains);

}  // namespace
