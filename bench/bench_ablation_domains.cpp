// Ablation A6 — correlated enclosure failures and rack-aware placement.
//
// Paper §2.2: "placement and support services to the disk introduce common
// failure causes such as a localized failure in the cooling system."  This
// bench adds destructive enclosure events (64-disk domains) to the 2 PB
// base system and compares domain-oblivious against rack-aware placement,
// under FARM, for two-way mirroring and 4/6.
#include "bench_common.hpp"

#include <mutex>

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(30);
  bench::print_header("Ablation: correlated enclosure failures",
                      "paper §2.2 common failure causes (extension)", trials);

  util::Table table({"scheme", "placement", "P(loss) [95% CI]",
                     "enclosure events/trial"});
  for (const char* scheme : {"1/2", "4/6"}) {
    for (const bool aware : {false, true}) {
      core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
      cfg.scheme = erasure::Scheme::parse(scheme);
      cfg.detection_latency = util::seconds(30);
      cfg.domains.enabled = true;
      cfg.domains.disks_per_domain = 64;
      // ~1 enclosure event per system per decade of enclosure-hours:
      // with ~156 enclosures, a handful of events per 6-year mission.
      cfg.domains.domain_mtbf = util::hours(2.0e6);
      cfg.domains.rack_aware_placement = aware;
      cfg.stop_at_first_loss = false;

      core::MonteCarloOptions opts;
      opts.trials = trials;
      opts.master_seed = 0xAB1'0006;
      double domain_events = 0.0;
      std::mutex mu;
      opts.observer = [&](std::size_t, const core::TrialResult& r) {
        std::lock_guard lock(mu);
        domain_events += static_cast<double>(r.domain_failures);
      };
      const core::MonteCarloResult r = core::run_monte_carlo(cfg, opts);
      table.add_row({scheme, aware ? "rack-aware" : "oblivious",
                     analysis::loss_cell(r),
                     util::fmt_fixed(domain_events / static_cast<double>(trials), 1)});
    }
  }
  std::cout << table
            << "\nExpected: oblivious placement loses data whenever an enclosure\n"
               "event catches a group with two blocks in that enclosure;\n"
               "rack-aware placement reduces each event to ordinary single-block\n"
               "recoveries.\n";
  return 0;
}
