// Micro-benchmark: placement lookup and layout throughput.  Placement sits
// on the hot path of both initial layout (millions of groups) and recovery
// target selection, so candidate() must stay in the tens of nanoseconds.
#include <benchmark/benchmark.h>

#include "placement/placement.hpp"

namespace {

using namespace farm::placement;

void BM_Candidate(benchmark::State& state, PolicyKind kind, std::size_t clusters) {
  auto policy = make_policy(kind, 42);
  for (std::size_t c = 0; c < clusters; ++c) policy->add_cluster(1000, 1.0);
  GroupId g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->candidate(g, 0));
    ++g;
  }
}

void BM_Layout(benchmark::State& state, PolicyKind kind, unsigned blocks) {
  auto policy = make_policy(kind, 42);
  policy->add_cluster(10000, 1.0);
  GroupId g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->layout(g, blocks));
    ++g;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Candidate, rush_1_cluster, PolicyKind::kRush, 1);
BENCHMARK_CAPTURE(BM_Candidate, rush_5_clusters, PolicyKind::kRush, 5);
BENCHMARK_CAPTURE(BM_Candidate, rush_20_clusters, PolicyKind::kRush, 20);
BENCHMARK_CAPTURE(BM_Candidate, random, PolicyKind::kRandom, 1);
BENCHMARK_CAPTURE(BM_Candidate, chained, PolicyKind::kChained, 1);
// straw2 draws one straw per disk per lookup: O(#disks), the price of its
// optimal-reorganization guarantee on a flat bucket.
BENCHMARK_CAPTURE(BM_Candidate, straw2_1000_disks, PolicyKind::kStraw2, 1);
BENCHMARK_CAPTURE(BM_Layout, rush_mirror, PolicyKind::kRush, 2u);
BENCHMARK_CAPTURE(BM_Layout, rush_8_10, PolicyKind::kRush, 10u);
BENCHMARK_CAPTURE(BM_Layout, random_8_10, PolicyKind::kRandom, 10u);

BENCHMARK_MAIN();
