// Micro-benchmark: ObjectStore end-to-end throughput (put / degraded get /
// declustered recover) on real bytes — the byte-path cost behind the
// simulator's abstractions.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "store/object_store.hpp"
#include "util/random.hpp"

namespace {

using namespace farm;

std::vector<store::Byte> payload(std::size_t n) {
  std::vector<store::Byte> data(n);
  util::Xoshiro256 rng{5};
  for (auto& b : data) b = static_cast<store::Byte>(rng.below(256));
  return data;
}

store::StoreConfig cfg_for(const char* scheme) {
  store::StoreConfig cfg;
  cfg.scheme = erasure::Scheme::parse(scheme);
  cfg.group_payload = 1 << 20;
  return cfg;
}

void BM_StorePut(benchmark::State& state, const char* scheme) {
  const auto data = payload(4 << 20);
  for (auto _ : state) {
    store::ObjectStore s(cfg_for(scheme), 16);
    s.put("obj", data);
    benchmark::DoNotOptimize(s.group_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_StoreDegradedGet(benchmark::State& state, const char* scheme) {
  const auto data = payload(4 << 20);
  store::ObjectStore s(cfg_for(scheme), 16);
  s.put("obj", data);
  s.fail_disk(0);  // every read may need reconstruction
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.get("obj"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_StoreRecover(benchmark::State& state, const char* scheme) {
  const auto data = payload(4 << 20);
  for (auto _ : state) {
    state.PauseTiming();
    store::ObjectStore s(cfg_for(scheme), 16);
    s.put("obj", data);
    s.fail_disk(1);
    state.ResumeTiming();
    const auto report = s.recover();
    benchmark::DoNotOptimize(report.blocks_rebuilt);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_StorePut, mirror_1_2, "1/2");
BENCHMARK_CAPTURE(BM_StorePut, rs_4_6, "4/6");
BENCHMARK_CAPTURE(BM_StoreDegradedGet, mirror_1_2, "1/2");
BENCHMARK_CAPTURE(BM_StoreDegradedGet, rs_4_6, "4/6");
BENCHMARK_CAPTURE(BM_StoreRecover, mirror_1_2, "1/2");
BENCHMARK_CAPTURE(BM_StoreRecover, rs_4_6, "4/6");

BENCHMARK_MAIN();
