// Micro-benchmark: the max-min fair-share solver and flow churn.  A failure
// burst on the 2 PB system keeps a few hundred flows open and re-solves on
// every start/finish; these numbers bound the fabric's share of a trial.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/fabric.hpp"
#include "util/random.hpp"

namespace {

using namespace farm;

net::TopologyConfig topo() {
  net::TopologyConfig t;
  t.enabled = true;
  t.disks_per_node = 16;
  t.nodes_per_rack = 8;
  t.nic_bandwidth = util::mb_per_sec(1000);
  t.oversubscription = 8.0;
  return t;
}

/// Solve with N random flows over a 10,000-disk cluster (mixed same-node /
/// same-rack / cross-rack paths).
void BM_Solve(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng{17};
  net::Fabric fabric{topo()};
  const auto disk = [&] {
    return static_cast<net::EndpointId>(rng.uniform() * 10000.0);
  };
  for (std::size_t i = 0; i < flows; ++i) {
    fabric.open(disk(), disk(), util::mb_per_sec(16));
  }
  for (auto _ : state) {
    fabric.solve();
    benchmark::DoNotOptimize(fabric.rate(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}

/// The contended case: every flow funnels into one node (a dedicated
/// spare), so progressive filling freezes them over many rounds.
void BM_SolveContended(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng{23};
  net::Fabric fabric{topo()};
  for (std::size_t i = 0; i < flows; ++i) {
    const auto src = static_cast<net::EndpointId>(128 + rng.uniform() * 9000.0);
    fabric.open(src, /*dst=*/0, util::mb_per_sec(16));
  }
  for (auto _ : state) {
    fabric.solve();
    benchmark::DoNotOptimize(fabric.rate(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}

/// Open/solve/close churn — the pattern every rebuild start/finish drives.
void BM_ChurnResolve(benchmark::State& state) {
  const auto keep = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng{29};
  net::Fabric fabric{topo()};
  const auto disk = [&] {
    return static_cast<net::EndpointId>(rng.uniform() * 10000.0);
  };
  std::vector<net::FlowId> open;
  open.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    open.push_back(fabric.open(disk(), disk(), util::mb_per_sec(16)));
  }
  std::size_t victim = 0;
  for (auto _ : state) {
    fabric.close(open[victim]);
    fabric.solve();
    open[victim] = fabric.open(disk(), disk(), util::mb_per_sec(16));
    fabric.solve();
    victim = (victim + 1) % keep;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_Solve)->Arg(40)->Arg(400)->Arg(4000);
BENCHMARK(BM_SolveContended)->Arg(40)->Arg(400);
BENCHMARK(BM_ChurnResolve)->Arg(40)->Arg(400);

BENCHMARK_MAIN();
