// Ablation A7 — emergency priority for critical groups (extension).
//
// A group that has exhausted its fault tolerance is one failure from data
// loss; modern declustered systems promote such rebuilds above the normal
// recovery bandwidth cap.  Under two-way mirroring every degraded group is
// critical, so the knob effectively multiplies FARM's rebuild rate; for
// deeper codes it only fires in the rare two-failure overlap.
#include <sstream>

#include "analysis/scenario.hpp"
#include "erasure/scheme.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace farm;

constexpr const char* kSchemes[] = {"1/2", "4/6"};
constexpr double kSpeedups[] = {1.0, 5.0};

std::string point_label(const char* scheme, double speedup) {
  return std::string(scheme) + "/" + (speedup == 1.0 ? "off" : "5x");
}

class AblationCriticalPriority final : public analysis::Scenario {
 public:
  AblationCriticalPriority()
      : Scenario({"ablation_critical_priority",
                  "Ablation: emergency priority for critical groups",
                  "extension (cf. Ceph degraded-PG priority)", 40}) {}

  std::vector<analysis::SweepPoint> build_points(
      const analysis::ScenarioOptions& opts) const override {
    std::vector<analysis::SweepPoint> points;
    for (const char* scheme : kSchemes) {
      for (const double speedup : kSpeedups) {
        core::SystemConfig cfg = base_config(opts);
        cfg.scheme = erasure::Scheme::parse(scheme);
        cfg.detection_latency = util::seconds(30);
        cfg.critical_rebuild_speedup = speedup;
        cfg.stop_at_first_loss = true;
        points.push_back({point_label(scheme, speedup), cfg});
      }
    }
    return points;
  }

 protected:
  std::string format(const analysis::ScenarioRun& run) const override {
    util::Table table({"scheme", "critical speedup", "P(loss) [95% CI]",
                       "mean window"});
    for (const char* scheme : kSchemes) {
      for (const double speedup : kSpeedups) {
        const auto& r = run.at(point_label(scheme, speedup)).result;
        table.add_row({scheme, speedup == 1.0 ? "off" : "5x",
                       analysis::loss_cell(r),
                       util::to_string(util::Seconds{r.mean_window_sec})});
      }
    }
    std::ostringstream os;
    os << table
       << "\nExpected: for 1/2 the 5x emergency rate divides the rebuild\n"
          "window (and with it P(loss)) by nearly 5; for 4/6 losses are\n"
          "already negligible and only the rare critical overlap changes.\n";
    return os.str();
  }
};

FARM_REGISTER_SCENARIO(AblationCriticalPriority);

}  // namespace
