// Ablation A7 — emergency priority for critical groups (extension).
//
// A group that has exhausted its fault tolerance is one failure from data
// loss; modern declustered systems promote such rebuilds above the normal
// recovery bandwidth cap.  Under two-way mirroring every degraded group is
// critical, so the knob effectively multiplies FARM's rebuild rate; for
// deeper codes it only fires in the rare two-failure overlap.
#include "bench_common.hpp"

int main() {
  using namespace farm;
  bench::Stopwatch timer;
  const std::size_t trials = core::bench_trials(40);
  bench::print_header("Ablation: emergency priority for critical groups",
                      "extension (cf. Ceph degraded-PG priority)", trials);

  util::Table table({"scheme", "critical speedup", "P(loss) [95% CI]",
                     "mean window"});
  for (const char* scheme : {"1/2", "4/6"}) {
    for (const double speedup : {1.0, 5.0}) {
      core::SystemConfig cfg = analysis::apply_env_scale(analysis::paper_base_config());
      cfg.scheme = erasure::Scheme::parse(scheme);
      cfg.detection_latency = util::seconds(30);
      cfg.critical_rebuild_speedup = speedup;
      cfg.stop_at_first_loss = true;

      core::MonteCarloOptions opts;
      opts.trials = trials;
      opts.master_seed = 0xAB1'0007;
      const core::MonteCarloResult r = core::run_monte_carlo(cfg, opts);
      table.add_row({scheme, speedup == 1.0 ? "off" : "5x",
                     analysis::loss_cell(r),
                     util::to_string(util::Seconds{r.mean_window_sec})});
    }
  }
  std::cout << table
            << "\nExpected: for 1/2 the 5x emergency rate divides the rebuild\n"
               "window (and with it P(loss)) by nearly 5; for 4/6 losses are\n"
               "already negligible and only the rare critical overlap changes.\n";
  return 0;
}
