// farmtrace — run one simulated mission and dump its event timeline as CSV.
//
//   $ farmtrace [--data 40TB] [--mode farm|spare|distsparing] [--seed N]
//               [--scheme m/n] [--detect Ns] [--hazard-scale x] [--summary]
//
// Columns: t_seconds, t_human, event, id.  Events: disk_failed,
// domain_failed, detected, rebuild_complete, redirected, data_loss, batch.
// Useful for eyeballing recovery pipelines ("how long after detection did
// the last block of disk 517 land?") and for piping into plotting tools.
#include <iostream>
#include <string>

#include "analysis/experiment.hpp"
#include "farm/reliability_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace farm;
  core::SystemConfig cfg = analysis::scaled_config(0.02);  // 40 TB default
  std::uint64_t seed = 1;
  bool summary_only = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--data") {
        const std::string v = next();
        double mult = util::kTB;
        std::string num = v;
        if (v.size() > 2 && v.substr(v.size() - 2) == "PB") {
          mult = util::kPB;
          num = v.substr(0, v.size() - 2);
        } else if (v.size() > 2 && v.substr(v.size() - 2) == "TB") {
          num = v.substr(0, v.size() - 2);
        }
        cfg.total_user_data = util::Bytes{std::stod(num) * mult};
      } else if (arg == "--mode") {
        const std::string m = next();
        cfg.recovery_mode = m == "spare" ? core::RecoveryMode::kDedicatedSpare
                            : m == "distsparing"
                                ? core::RecoveryMode::kDistributedSparing
                                : core::RecoveryMode::kFarm;
      } else if (arg == "--scheme") {
        cfg.scheme = erasure::Scheme::parse(next());
      } else if (arg == "--detect") {
        cfg.detection_latency = util::seconds(std::stod(next()));
      } else if (arg == "--hazard-scale") {
        cfg.hazard_scale = std::stod(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--summary") {
        summary_only = true;
      } else {
        std::cerr << "farmtrace: unknown option " << arg << "\n";
        return 2;
      }
    }
    cfg.validate();
  } catch (const std::exception& e) {
    std::cerr << "farmtrace: " << e.what() << "\n";
    return 2;
  }

  std::cerr << "# " << cfg.summary() << ", seed " << seed << "\n";

  core::ReliabilitySimulator sim(cfg, seed);
  std::uint64_t events = 0;
  if (!summary_only) std::cout << "t_seconds,t_human,event,id\n";
  sim.set_trace([&](double t, std::string_view event, std::uint64_t id) {
    ++events;
    if (summary_only) return;
    std::string human = util::to_string(util::Seconds{t});
    for (auto& c : human) {
      if (c == ',') c = ';';
    }
    std::cout << t << ',' << human << ',' << event << ',' << id << "\n";
  });
  const core::TrialResult r = sim.run();

  std::cerr << "# " << events << " trace events | failures " << r.disk_failures
            << " | rebuilds " << r.rebuilds_completed << " | redirections "
            << r.redirections << " | lost groups " << r.lost_groups
            << " | mean window "
            << util::to_string(util::Seconds{r.mean_window_sec}) << "\n";
  return 0;
}
