// farm_triage — clusters swarm failures and shrinks their repro specs.
//
//   farm_triage report.json                  triage table (stdout)
//   farm_triage report.json --json out.json  machine-readable artifact
//   farm_triage report.json --shrink DIR     delta-debug each cluster's
//                                            exemplar into DIR/<label>.json
//
// Reads the report written by `farm_bench --swarm --out report.json`,
// groups the failing combos by (violated invariants, fired buggify points),
// and — with --shrink — reduces one exemplar per cluster to a near-minimal
// spec that still fails with the same signature.  Everything is
// deterministic: the table, the artifact, and the shrunk specs are
// byte-identical across runs and across --threads values.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/shrink.hpp"
#include "workload/triage.hpp"

namespace {

using namespace farm;

int usage(std::ostream& os, int exit_code) {
  os << "usage: farm_triage REPORT.json [options]\n"
        "  --json FILE     write the triage artifact to FILE\n"
        "  --shrink DIR    shrink each cluster's exemplar repro spec into\n"
        "                  DIR/<label>.json (delta debugging; deterministic)\n"
        "  --trials N      Monte-Carlo trials per shrink probe (default: the\n"
        "                  report's per-combo trial count)\n"
        "  --max-probes N  shrink probe budget per exemplar (default 256)\n"
        "  --threads N     worker threads for shrink probes (never changes\n"
        "                  the shrunk bytes)\n"
        "  -h, --help      this message\n"
        "exit status: 0 on success (even with failures to triage), 2 on\n"
        "bad usage or unreadable input\n";
  return exit_code;
}

struct Args {
  std::string report_path;
  std::optional<std::string> json_path;
  std::optional<std::string> shrink_dir;
  std::size_t trials = 0;  // 0 = the report's trial count
  std::size_t max_probes = 256;
  std::optional<std::size_t> threads;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  const auto next = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  const auto positive = [&](const char* flag, const char* v) -> std::size_t {
    char* end = nullptr;
    const long long n = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || n <= 0) {
      throw std::invalid_argument(std::string(flag) +
                                  " expects a positive integer, got '" +
                                  std::string(v) + "'");
    }
    return static_cast<std::size_t>(n);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "-h" || a == "--help") {
      usage(std::cout, 0);
      return std::nullopt;
    } else if (a == "--json") {
      args.json_path = next(i, "--json");
    } else if (a == "--shrink") {
      args.shrink_dir = next(i, "--shrink");
    } else if (a == "--trials") {
      args.trials = positive("--trials", next(i, "--trials"));
    } else if (a == "--max-probes") {
      args.max_probes = positive("--max-probes", next(i, "--max-probes"));
    } else if (a == "--threads") {
      args.threads = positive("--threads", next(i, "--threads"));
    } else if (!a.empty() && a[0] == '-') {
      throw std::invalid_argument("unknown option '" + std::string(a) + "'");
    } else if (args.report_path.empty()) {
      args.report_path = a;
    } else {
      throw std::invalid_argument("unexpected argument '" + std::string(a) +
                                  "'");
    }
  }
  if (args.report_path.empty()) {
    throw std::invalid_argument("a swarm report path is required");
  }
  return args;
}

std::string join(const std::vector<std::string>& names) {
  std::string s;
  for (const std::string& n : names) {
    if (!s.empty()) s += ' ';
    s += n;
  }
  return s.empty() ? "-" : s;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> parsed;
  try {
    parsed = parse_args(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "farm_triage: " << e.what() << "\n\n";
    return usage(std::cerr, 2);
  }
  if (!parsed) return 0;  // --help
  const Args& args = *parsed;

  std::ifstream in(args.report_path);
  if (!in) {
    std::cerr << "farm_triage: cannot read '" << args.report_path << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  util::JsonValue report;
  workload::TriageReport triage;
  try {
    report = util::JsonValue::parse(text.str());
    triage = workload::triage_swarm_report(report);
  } catch (const std::exception& e) {
    std::cerr << "farm_triage: " << args.report_path << ": " << e.what()
              << "\n";
    return 2;
  }

  std::cout << "=== triage: " << triage.failed << " of " << triage.combos
            << " combos failed, " << triage.clusters.size()
            << " distinct signature(s), master seed " << triage.master_seed
            << " ===\n\n";
  if (!triage.clusters.empty()) {
    util::Table table({"cluster", "invariants", "fired points", "combos"});
    for (std::size_t i = 0; i < triage.clusters.size(); ++i) {
      const workload::TriageCluster& c = triage.clusters[i];
      table.add_row({std::to_string(i), join(c.invariants), join(c.fired),
                     std::to_string(c.combos.size()) + " (" + c.combos[0] +
                         (c.combos.size() > 1 ? ", ...)" : ")")});
    }
    std::cout << table;
  }

  if (args.json_path) {
    std::ofstream out(*args.json_path);
    if (!out) {
      std::cerr << "farm_triage: cannot write '" << *args.json_path << "'\n";
      return 2;
    }
    out << workload::to_json(triage);
    if (!out.flush()) {
      std::cerr << "farm_triage: error writing '" << *args.json_path << "'\n";
      return 2;
    }
    std::cout << "wrote " << *args.json_path << "\n";
  }

  if (args.shrink_dir && !triage.clusters.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(*args.shrink_dir, ec);
    if (ec) {
      std::cerr << "farm_triage: cannot create '" << *args.shrink_dir
                << "': " << ec.message() << "\n";
      return 2;
    }
    std::unique_ptr<util::ThreadPool> pool;
    if (args.threads) pool = std::make_unique<util::ThreadPool>(*args.threads);

    for (const workload::TriageCluster& cluster : triage.clusters) {
      const std::string& label = cluster.combos.front();
      const util::JsonValue* combo =
          workload::find_swarm_combo(report, label);
      const util::JsonValue* repro =
          combo != nullptr ? combo->find("repro_spec") : nullptr;
      if (repro == nullptr) {
        std::cerr << "farm_triage: no repro_spec for '" << label << "'\n";
        return 2;
      }
      try {
        workload::ShrinkOptions sopts;
        sopts.trials = args.trials > 0 ? args.trials : triage.trials;
        sopts.master_seed = triage.master_seed;
        sopts.pool = pool.get();
        sopts.max_probes = args.max_probes;
        const workload::ShrinkResult shrunk =
            workload::shrink_spec(workload::parse_spec(*repro), sopts);
        const std::filesystem::path path =
            std::filesystem::path(*args.shrink_dir) / (label + ".json");
        std::ofstream out(path);
        if (!out) {
          std::cerr << "farm_triage: cannot write '" << path.string()
                    << "'\n";
          return 2;
        }
        out << workload::spec_to_json(shrunk.spec);
        if (!out.flush()) {
          std::cerr << "farm_triage: error writing '" << path.string()
                    << "'\n";
          return 2;
        }
        std::cout << label << ": " << shrunk.atoms_initial << " -> "
                  << shrunk.atoms_final << " atoms in " << shrunk.probes
                  << " probes (signature: " << join(shrunk.signature)
                  << "); wrote " << path.string() << "\n";
      } catch (const std::exception& e) {
        std::cerr << "farm_triage: shrink of '" << label
                  << "' failed: " << e.what() << "\n";
        return 2;
      }
    }
  }
  return 0;
}
