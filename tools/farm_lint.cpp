// farm_lint — project-specific determinism and unit-safety checker.
//
//   farm_lint [--root DIR] [files...]     lint the repo (or specific files)
//   farm_lint --json                      machine-readable findings document
//   farm_lint --list-rules                print the rule table
//   farm_lint --update-manifest           rewrite the golden manifest (R5)
//   farm_lint --include-suppressed        show suppressed findings too
//   farm_lint --manifest PATH             override the manifest location
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
//
// With no file arguments the tool walks src/, bench/, tests/, tools/ and
// examples/ under --root (default: the current directory), skipping
// tests/lint_fixtures/ — those files violate the rules on purpose.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultManifest = "tools/golden_manifest.txt";

struct Options {
  std::string root = ".";
  std::string manifest;  // empty: <root>/tools/golden_manifest.txt if present
  std::vector<std::string> files;
  bool json = false;
  bool list_rules = false;
  bool update_manifest = false;
  bool include_suppressed = false;
};

void usage(std::ostream& os) {
  os << "usage: farm_lint [--root DIR] [--manifest PATH] [--json]\n"
        "                 [--list-rules] [--update-manifest]\n"
        "                 [--include-suppressed] [files...]\n";
}

[[nodiscard]] std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

/// Repo-relative path with '/' separators (the form rules and reports use).
[[nodiscard]] std::string rel_path(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

[[nodiscard]] std::vector<std::string> collect_files(const fs::path& root) {
  static constexpr const char* kDirs[] = {"src", "bench", "tests", "tools",
                                          "examples"};
  std::vector<std::string> out;
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      std::string rel = rel_path(root, entry.path());
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "farm_lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = next();
    } else if (arg == "--manifest") {
      opt.manifest = next();
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--update-manifest") {
      opt.update_manifest = true;
    } else if (arg == "--include-suppressed") {
      opt.include_suppressed = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "farm_lint: unknown option " << arg << '\n';
      usage(std::cerr);
      return 2;
    } else {
      opt.files.push_back(arg);
    }
  }

  if (opt.list_rules) {
    for (const auto& r : farm::lint::rule_table()) {
      std::cout << r.id << "  " << r.summary << '\n';
    }
    return 0;
  }

  const fs::path root = opt.root;
  if (!fs::exists(root)) {
    std::cerr << "farm_lint: root " << root << " does not exist\n";
    return 2;
  }

  fs::path manifest_path =
      opt.manifest.empty() ? root / kDefaultManifest : fs::path(opt.manifest);

  // --- R5 manifest ----------------------------------------------------------
  farm::lint::GoldenManifest manifest;
  bool have_manifest = false;
  if (const auto text = read_file(manifest_path)) {
    try {
      manifest = farm::lint::GoldenManifest::parse(*text);
      have_manifest = true;
    } catch (const std::exception& e) {
      std::cerr << "farm_lint: " << manifest_path.generic_string() << ": "
                << e.what() << '\n';
      return 2;
    }
  } else if (!opt.manifest.empty()) {
    std::cerr << "farm_lint: cannot read manifest " << opt.manifest << '\n';
    return 2;
  }

  if (opt.update_manifest) {
    if (!have_manifest) {
      std::cerr << "farm_lint: no manifest at "
                << manifest_path.generic_string() << " to update\n";
      return 2;
    }
    for (auto& entry : manifest.entries) {
      const auto content = read_file(root / entry.path);
      if (!content) {
        std::cerr << "farm_lint: manifest-pinned " << entry.path
                  << " is missing; remove the line by hand\n";
        return 2;
      }
      entry.fingerprint = farm::lint::golden_fingerprint(*content);
    }
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out << manifest.serialize();
    if (!out) {
      std::cerr << "farm_lint: cannot write "
                << manifest_path.generic_string() << '\n';
      return 2;
    }
    std::cout << "farm_lint: updated " << manifest.entries.size()
              << " fingerprints in " << manifest_path.generic_string() << '\n';
    return 0;
  }

  // --- gather + lint --------------------------------------------------------
  std::vector<std::string> files =
      opt.files.empty() ? collect_files(root) : opt.files;

  std::vector<farm::lint::Finding> findings;
  for (const std::string& f : files) {
    const fs::path full = fs::path(f).is_absolute() ? fs::path(f) : root / f;
    const auto content = read_file(full);
    if (!content) {
      std::cerr << "farm_lint: cannot read " << f << '\n';
      return 2;
    }
    auto file_findings =
        farm::lint::lint_source(rel_path(root, full), *content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  if (have_manifest && opt.files.empty()) {
    auto r5 = farm::lint::check_manifest(
        manifest, [&](const std::string& p) { return read_file(root / p); });
    findings.insert(findings.end(), std::make_move_iterator(r5.begin()),
                    std::make_move_iterator(r5.end()));
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const farm::lint::Finding& a,
                      const farm::lint::Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });

  const auto unsuppressed = static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const farm::lint::Finding& f) { return !f.suppressed; }));

  if (opt.json) {
    farm::lint::write_findings_json(std::cout, root.generic_string(),
                                    files.size(), findings);
  } else {
    for (const auto& f : findings) {
      if (f.suppressed && !opt.include_suppressed) continue;
      std::cout << f.file << ':' << f.line << ": " << f.rule << ": "
                << f.message;
      if (f.suppressed) std::cout << " [suppressed: " << f.suppress_reason << ']';
      std::cout << '\n';
    }
    std::cout << "farm_lint: " << files.size() << " files, " << unsuppressed
              << " findings (" << findings.size() - unsuppressed
              << " suppressed)\n";
  }
  return unsuppressed == 0 ? 0 : 1;
}
