// farm_lint — project-specific determinism and unit-safety checker.
//
//   farm_lint [--root DIR] [files...]     lint the repo (or specific files)
//   farm_lint --json                      machine-readable findings document
//   farm_lint --list-rules                print the rule table
//   farm_lint --list-rules-md             ... as a markdown table (for docs)
//   farm_lint --fix                       apply mechanical fixes in place
//   farm_lint --cache DIR                 incremental cache (re-lint only
//                                         files whose content changed)
//   farm_lint --update-manifest           rewrite the golden manifest (R5)
//   farm_lint --include-suppressed        show suppressed findings too
//   farm_lint --manifest PATH             override the manifest location
//   farm_lint --rule-version              print the lint rule version
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
//
// The lint runs in two phases.  Phase 1 tokenizes each file and runs the
// per-file rules (R1-R4, R6) while building a semantic index (includes,
// seed lanes, BUGGIFY sites, catalog entries, golden fingerprints); with
// --cache, unchanged files load their phase-1 record from disk instead of
// re-tokenizing.  Phase 2 runs the cross-TU rules (R5 golden drift, R7
// layering, R8 seed-lane registry, R9 buggify coverage, R10 manifest
// staleness) over the whole index — phase 2 needs the whole repo, so it is
// skipped when explicit file arguments narrow the scan.
//
// With no file arguments the tool walks src/, bench/, tests/, tools/ and
// examples/ under --root (default: the current directory), skipping
// tests/lint_fixtures/ — those files violate the rules on purpose.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint/fix.hpp"
#include "lint/graph.hpp"
#include "lint/index.hpp"
#include "lint/rules.hpp"
#include "util/random.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultManifest = "tools/golden_manifest.txt";

struct Options {
  std::string root = ".";
  std::string manifest;  // empty: <root>/tools/golden_manifest.txt if present
  std::string cache_dir;
  std::vector<std::string> files;
  bool json = false;
  bool fix = false;
  bool list_rules = false;
  bool list_rules_md = false;
  bool update_manifest = false;
  bool include_suppressed = false;
};

void usage(std::ostream& os) {
  os << "usage: farm_lint [--root DIR] [--manifest PATH] [--cache DIR]\n"
        "                 [--json] [--fix] [--list-rules] [--list-rules-md]\n"
        "                 [--update-manifest] [--include-suppressed]\n"
        "                 [--rule-version] [files...]\n";
}

[[nodiscard]] std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

[[nodiscard]] bool write_file(const fs::path& p, std::string_view content) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

/// Repo-relative path with '/' separators (the form rules and reports use).
[[nodiscard]] std::string rel_path(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

[[nodiscard]] std::vector<std::string> collect_files(const fs::path& root) {
  static constexpr const char* kDirs[] = {"src", "bench", "tests", "tools",
                                          "examples"};
  std::vector<std::string> out;
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      std::string rel = rel_path(root, entry.path());
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "farm_lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = next();
    } else if (arg == "--manifest") {
      opt.manifest = next();
    } else if (arg == "--cache") {
      opt.cache_dir = next();
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--fix") {
      opt.fix = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--list-rules-md") {
      opt.list_rules_md = true;
    } else if (arg == "--update-manifest") {
      opt.update_manifest = true;
    } else if (arg == "--include-suppressed") {
      opt.include_suppressed = true;
    } else if (arg == "--rule-version") {
      std::cout << farm::lint::kLintRuleVersion << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "farm_lint: unknown option " << arg << '\n';
      usage(std::cerr);
      return 2;
    } else {
      opt.files.push_back(arg);
    }
  }

  if (opt.list_rules || opt.list_rules_md) {
    if (opt.list_rules_md) {
      std::cout << "| Rule | What it enforces |\n|------|------------------|\n";
      for (const auto& r : farm::lint::rule_table()) {
        std::cout << "| " << r.id << " | " << r.summary << " |\n";
      }
    } else {
      for (const auto& r : farm::lint::rule_table()) {
        std::cout << r.id << "  " << r.summary << '\n';
      }
    }
    return 0;
  }

  const fs::path root = opt.root;
  if (!fs::exists(root)) {
    std::cerr << "farm_lint: root " << root << " does not exist\n";
    return 2;
  }

  fs::path manifest_path =
      opt.manifest.empty() ? root / kDefaultManifest : fs::path(opt.manifest);

  // --- R5/R10 manifest ------------------------------------------------------
  farm::lint::GoldenManifest manifest;
  bool have_manifest = false;
  if (const auto text = read_file(manifest_path)) {
    try {
      manifest = farm::lint::GoldenManifest::parse(*text);
      have_manifest = true;
    } catch (const std::exception& e) {
      std::cerr << "farm_lint: " << manifest_path.generic_string() << ": "
                << e.what() << '\n';
      return 2;
    }
  } else if (!opt.manifest.empty()) {
    std::cerr << "farm_lint: cannot read manifest " << opt.manifest << '\n';
    return 2;
  }

  if (opt.update_manifest) {
    if (!have_manifest) {
      std::cerr << "farm_lint: no manifest at "
                << manifest_path.generic_string() << " to update\n";
      return 2;
    }
    for (auto& entry : manifest.entries) {
      const auto content = read_file(root / entry.path);
      if (!content) {
        std::cerr << "farm_lint: manifest-pinned " << entry.path
                  << " is missing; remove the line by hand\n";
        return 2;
      }
      entry.fingerprint = farm::lint::golden_fingerprint(*content);
    }
    if (!write_file(manifest_path, manifest.serialize())) {
      std::cerr << "farm_lint: cannot write "
                << manifest_path.generic_string() << '\n';
      return 2;
    }
    std::cout << "farm_lint: updated " << manifest.entries.size()
              << " fingerprints in " << manifest_path.generic_string() << '\n';
    return 0;
  }

  // --- phase 1: per-file lint + index (cache-aware) -------------------------
  const bool whole_repo = opt.files.empty();
  std::vector<std::string> files =
      whole_repo ? collect_files(root) : opt.files;

  std::optional<farm::lint::IndexCache> cache;
  if (!opt.cache_dir.empty()) {
    cache.emplace(opt.cache_dir);
    if (!cache->enabled()) {
      std::cerr << "farm_lint: cannot create cache dir " << opt.cache_dir
                << "; running without a cache\n";
    }
  }

  farm::lint::RepoIndex index;
  index.files.reserve(files.size());
  std::size_t analyzed = 0;  // cache misses: files actually tokenized
  std::size_t fixed_files = 0;
  std::size_t fix_edits = 0;
  for (const std::string& f : files) {
    const fs::path full = fs::path(f).is_absolute() ? fs::path(f) : root / f;
    auto content = read_file(full);
    if (!content) {
      std::cerr << "farm_lint: cannot read " << f << '\n';
      return 2;
    }
    const std::string rel = rel_path(root, full);

    if (opt.fix) {
      // Fixing rewrites content before indexing, so the index and findings
      // below always describe the post-fix tree.
      const farm::lint::FixResult fr = farm::lint::fix_source(rel, *content);
      if (fr.edits > 0) {
        if (!write_file(full, fr.content)) {
          std::cerr << "farm_lint: cannot write " << f << '\n';
          return 2;
        }
        *content = fr.content;
        ++fixed_files;
        fix_edits += fr.edits;
      }
    }

    const std::uint64_t hash = farm::util::hash_string(*content);
    if (cache && cache->enabled()) {
      if (auto hit = cache->load(rel, hash)) {
        index.files.push_back(std::move(*hit));
        continue;
      }
    }
    farm::lint::FileIndex fi = farm::lint::index_file(rel, *content);
    ++analyzed;
    if (cache && cache->enabled()) cache->store(fi);
    index.files.push_back(std::move(fi));
  }
  index.sort_by_path();

  std::vector<farm::lint::Finding> findings;
  for (const farm::lint::FileIndex& fi : index.files) {
    findings.insert(findings.end(), fi.findings.begin(), fi.findings.end());
  }

  // --- phase 2: cross-TU rules over the index -------------------------------
  if (whole_repo) {
    auto append = [&](std::vector<farm::lint::Finding> more) {
      findings.insert(findings.end(), std::make_move_iterator(more.begin()),
                      std::make_move_iterator(more.end()));
    };
    append(farm::lint::check_layering(index));
    append(farm::lint::check_seed_lanes(index));
    append(farm::lint::check_buggify_coverage(index));
    if (have_manifest) {
      const std::string manifest_rel = rel_path(root, manifest_path);
      if (opt.fix) {
        if (auto pruned = farm::lint::fix_manifest(manifest, index)) {
          if (!write_file(manifest_path, pruned->serialize())) {
            std::cerr << "farm_lint: cannot write "
                      << manifest_path.generic_string() << '\n';
            return 2;
          }
          fix_edits += manifest.entries.size() - pruned->entries.size();
          ++fixed_files;
          manifest = std::move(*pruned);
        }
      }
      append(farm::lint::check_manifest(
          manifest, [&](const std::string& p) { return read_file(root / p); }));
      append(farm::lint::check_manifest_staleness(manifest, manifest_rel,
                                                  index));
    }
  }

  // (file, line, rule) order keeps JSON artifacts diffable across runs,
  // thread counts and cache states.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const farm::lint::Finding& a,
                      const farm::lint::Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });

  const auto unsuppressed = static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const farm::lint::Finding& f) { return !f.suppressed; }));

  if (opt.fix && fix_edits > 0) {
    std::cerr << "farm_lint: fixed " << fix_edits << " finding(s) in "
              << fixed_files << " file(s)\n";
  }
  if (cache && cache->enabled()) {
    // Cache stats go to stderr so --json output stays byte-identical
    // between cold and warm runs.
    std::cerr << "farm_lint: analyzed " << analyzed << " of " << files.size()
              << " files (" << files.size() - analyzed << " cached)\n";
  }

  if (opt.json) {
    farm::lint::write_findings_json(std::cout, root.generic_string(),
                                    files.size(), findings);
  } else {
    for (const auto& f : findings) {
      if (f.suppressed && !opt.include_suppressed) continue;
      std::cout << f.file << ':' << f.line << ": " << f.rule << ": "
                << f.message;
      if (f.suppressed) std::cout << " [suppressed: " << f.suppress_reason << ']';
      std::cout << '\n';
    }
    std::cout << "farm_lint: " << files.size() << " files, " << unsuppressed
              << " findings (" << findings.size() - unsuppressed
              << " suppressed)\n";
  }
  return unsuppressed == 0 ? 0 : 1;
}
