// farmsim — command-line front end to the FARM reliability simulator.
//
// Runs a Monte-Carlo reliability study of a configurable large-scale
// storage system and prints the aggregate results (optionally as CSV).
//
//   $ farmsim --data 2PB --scheme 1/2 --group 10GB --mode farm
//             --detect 30s --recover-bw 16 --years 6 --trials 100
//   $ farmsim --help
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "farm/monte_carlo.hpp"
#include "util/table.hpp"

namespace {

using namespace farm;

[[noreturn]] void usage(int code) {
  std::cout << R"(farmsim — FARM reliability simulator (HPDC 2004 reproduction)

usage: farmsim [options]

workload / redundancy
  --data <N>{GB|TB|PB}     total user data            (default 2PB)
  --group <N>{GB|TB}       redundancy group user data (default 10GB)
  --scheme m/n             redundancy scheme          (default 1/2)

recovery
  --mode farm|spare|distsparing   recovery policy     (default farm)
  --detect <N>{s|min|h}    failure-detection latency  (default 30s)
  --recover-bw <MB/s>      recovery bandwidth cap     (default 16)
  --critical-speedup <x>   emergency rate multiple for critical groups
  --spare-speedup <x>      dedicated-spare queue drain multiple
  --provision <N>{s|min|h} delay before a cold spare's rebuild can begin
  --diurnal                modulate recovery bw with a day/night user load
  --latent-errors          model unrecoverable read errors during rebuilds
  --scrub <efficiency>     fraction of latent errors scrubbed away (0-1)

devices / dynamics
  --hazard-scale <x>       multiply Table 1 failure rates (default 1.0)
  --no-smart               disable S.M.A.R.T. target avoidance
  --replace <fraction>     batch replacement threshold, e.g. 0.02
  --domains <disks>        enable correlated enclosure failures (disks/enclosure)
  --domain-mtbf <hours>    enclosure MTBF in hours        (default 2e6)
  --no-rack-aware          disable rack-aware placement under --domains
  --placement rush|random|chained|straw2               (default rush)

mission / harness
  --years <N>              mission length             (default 6)
  --trials <N>             Monte-Carlo trials         (default FARM_TRIALS or 100)
  --seed <N>               master seed                (default 0x5eedfa12)
  --csv                    machine-readable one-line output
  --utilization            also report per-disk utilization stats
  -h, --help               this text
)";
  std::exit(code);
}

double parse_quantity(const std::string& text, double unit_if_bare) {
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  const std::string suffix = text.substr(pos);
  if (suffix.empty()) return value * unit_if_bare;
  if (suffix == "GB") return value * util::kGB;
  if (suffix == "TB") return value * util::kTB;
  if (suffix == "PB") return value * util::kPB;
  if (suffix == "s") return value;
  if (suffix == "min") return value * 60.0;
  if (suffix == "h") return value * 3600.0;
  throw std::invalid_argument("unknown unit suffix: " + suffix);
}

}  // namespace

int main(int argc, char** argv) {
  core::SystemConfig cfg = analysis::paper_base_config();
  std::optional<std::size_t> cli_trials;
  std::size_t trials = 100;
  std::uint64_t seed = 0x5eedfa12;
  bool csv = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        usage(0);
      } else if (arg == "--data") {
        cfg.total_user_data = util::Bytes{parse_quantity(next(), util::kPB)};
      } else if (arg == "--group") {
        cfg.group_size = util::Bytes{parse_quantity(next(), util::kGB)};
      } else if (arg == "--scheme") {
        cfg.scheme = erasure::Scheme::parse(next());
      } else if (arg == "--mode") {
        const std::string m = next();
        if (m == "farm") {
          cfg.recovery_mode = core::RecoveryMode::kFarm;
        } else if (m == "spare") {
          cfg.recovery_mode = core::RecoveryMode::kDedicatedSpare;
        } else if (m == "distsparing") {
          cfg.recovery_mode = core::RecoveryMode::kDistributedSparing;
        } else {
          throw std::invalid_argument("unknown mode: " + m);
        }
      } else if (arg == "--detect") {
        cfg.detection_latency = util::Seconds{parse_quantity(next(), 1.0)};
      } else if (arg == "--recover-bw") {
        cfg.recovery_bandwidth = util::mb_per_sec(std::stod(next()));
      } else if (arg == "--critical-speedup") {
        cfg.critical_rebuild_speedup = std::stod(next());
      } else if (arg == "--spare-speedup") {
        cfg.spare_rebuild_speedup = std::stod(next());
      } else if (arg == "--provision") {
        cfg.spare_provision_delay = util::Seconds{parse_quantity(next(), 1.0)};
      } else if (arg == "--diurnal") {
        cfg.workload.kind = core::WorkloadKind::kDiurnal;
      } else if (arg == "--latent-errors") {
        cfg.latent_errors.enabled = true;
      } else if (arg == "--scrub") {
        cfg.latent_errors.enabled = true;
        cfg.latent_errors.scrub_efficiency = std::stod(next());
      } else if (arg == "--hazard-scale") {
        cfg.hazard_scale = std::stod(next());
      } else if (arg == "--no-smart") {
        cfg.smart.enabled = false;
      } else if (arg == "--replace") {
        cfg.replacement.enabled = true;
        cfg.replacement.loss_fraction_threshold = std::stod(next());
      } else if (arg == "--domains") {
        cfg.domains.enabled = true;
        cfg.domains.disks_per_domain = std::stoul(next());
      } else if (arg == "--domain-mtbf") {
        cfg.domains.enabled = true;
        cfg.domains.domain_mtbf = util::hours(std::stod(next()));
      } else if (arg == "--no-rack-aware") {
        cfg.domains.rack_aware_placement = false;
      } else if (arg == "--placement") {
        const std::string p = next();
        if (p == "rush") {
          cfg.placement = placement::PolicyKind::kRush;
        } else if (p == "random") {
          cfg.placement = placement::PolicyKind::kRandom;
        } else if (p == "chained") {
          cfg.placement = placement::PolicyKind::kChained;
        } else if (p == "straw2") {
          cfg.placement = placement::PolicyKind::kStraw2;
        } else {
          throw std::invalid_argument("unknown placement: " + p);
        }
      } else if (arg == "--years") {
        cfg.mission_time = util::years(std::stod(next()));
      } else if (arg == "--trials") {
        cli_trials = static_cast<std::size_t>(std::stoul(next()));
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--utilization") {
        cfg.collect_utilization = true;
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        usage(2);
      }
    }
    trials = analysis::resolve_trials(cli_trials, 100);
    cfg.stop_at_first_loss = !cfg.collect_utilization;
    cfg.validate();
  } catch (const std::exception& e) {
    std::cerr << "farmsim: " << e.what() << "\n";
    return 2;
  }

  if (!csv) {
    std::cout << "System: " << cfg.summary() << "\n"
              << "Mission: " << util::to_string(cfg.mission_time) << ", "
              << trials << " trials, seed " << seed << "\n\n";
  }

  core::MonteCarloOptions opts;
  opts.trials = trials;
  opts.master_seed = seed;
  const core::MonteCarloResult r = core::run_monte_carlo(cfg, opts);

  if (csv) {
    std::cout << "scheme,mode,group_gb,detect_s,recover_mbs,trials,losses,"
                 "p_loss,ci_lo,ci_hi,failures,rebuilds,redirections\n"
              << cfg.scheme.str() << ',' << core::to_string(cfg.recovery_mode)
              << ',' << cfg.group_size.value() / util::kGB << ','
              << cfg.detection_latency.value() << ','
              << cfg.recovery_bandwidth.value() / util::kMB << ',' << r.trials
              << ',' << r.trials_with_loss << ',' << r.loss_probability() << ','
              << r.loss_ci.lo << ',' << r.loss_ci.hi << ','
              << r.mean_disk_failures << ',' << r.mean_rebuilds << ','
              << r.mean_redirections << "\n";
    return 0;
  }

  util::Table table({"metric", "value"});
  table.add_row({"P(data loss)", analysis::loss_cell(r)});
  table.add_row({"disk failures / trial", util::fmt_fixed(r.mean_disk_failures, 1)});
  table.add_row({"block rebuilds / trial", util::fmt_fixed(r.mean_rebuilds, 1)});
  table.add_row({"redirections / trial", util::fmt_fixed(r.mean_redirections, 3)});
  table.add_row({"trials with redirection",
                 util::fmt_percent(r.frac_trials_with_redirection, 1)});
  table.add_row({"stalls / trial", util::fmt_fixed(r.mean_stalls, 3)});
  if (cfg.latent_errors.enabled) {
    table.add_row({"URE-caused losses / trial",
                   util::fmt_fixed(r.mean_ure_losses, 3)});
  }
  table.add_row({"mean window of vulnerability",
                 util::to_string(util::Seconds{r.mean_window_sec})});
  table.add_row({"max window of vulnerability",
                 util::to_string(util::Seconds{r.max_window_sec})});
  table.add_row({"degraded exposure",
                 util::fmt_sig(r.mean_degraded_exposure, 3)});
  if (cfg.domains.enabled) {
    table.add_row({"enclosure events / trial",
                   util::fmt_fixed(r.mean_domain_failures, 2)});
  }
  if (cfg.replacement.enabled) {
    table.add_row({"batches / trial", util::fmt_fixed(r.mean_batches, 2)});
    table.add_row({"migrated blocks / trial",
                   util::fmt_fixed(r.mean_migrated_blocks, 0)});
  }
  if (cfg.collect_utilization) {
    table.add_row({"initial util / disk",
                   util::fmt_fixed(r.initial_utilization.mean() / util::kGB, 1) +
                       " GB +- " +
                       util::fmt_fixed(r.initial_utilization.stddev() / util::kGB, 1)});
    table.add_row({"final util / disk",
                   util::fmt_fixed(r.final_utilization.mean() / util::kGB, 1) +
                       " GB +- " +
                       util::fmt_fixed(r.final_utilization.stddev() / util::kGB, 1)});
  }
  std::cout << table;
  return 0;
}
