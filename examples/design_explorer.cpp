// Design explorer: given a capacity target and a reliability goal, sweep
// the paper's redundancy configurations (with FARM) and report which meet
// the goal at the lowest storage overhead — the workflow paper §5 proposes
// for designers of petabyte-scale systems.
//
//   $ ./design_explorer [user-data-PB] [max-loss-%] [trials]
//   $ ./design_explorer 0.2 1.0 60
//
// Combines the Monte-Carlo simulator (measured P(loss)) with the analytic
// Markov model (closed-form sanity column).
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/markov.hpp"
#include "farm/monte_carlo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace farm;
  const double pb = argc > 1 ? std::atof(argv[1]) : 0.1;
  const double max_loss_pct = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::size_t trials = argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 60;
  if (pb <= 0.0 || max_loss_pct <= 0.0 || trials == 0) {
    std::cerr << "usage: design_explorer [user-data-PB] [max-loss-%] [trials]\n";
    return 1;
  }

  std::cout << "Goal: store " << pb << " PB of user data for 6 years with "
            << "P(data loss) <= " << max_loss_pct << "%\n"
            << "Sweeping the paper's redundancy configurations under FARM ("
            << trials << " trials each)...\n\n";

  util::Table table({"scheme", "disks", "storage overhead", "P(loss) measured",
                     "P(loss) Markov", "meets goal"});
  std::string best;
  double best_overhead = 1e9;

  for (const auto& scheme : erasure::paper_schemes()) {
    core::SystemConfig cfg = analysis::paper_base_config();
    cfg.total_user_data = util::petabytes(pb);
    cfg.scheme = scheme;
    cfg.stop_at_first_loss = true;

    core::MonteCarloOptions opts;
    opts.trials = trials;
    opts.master_seed = 0xDE5160;
    const core::MonteCarloResult r = core::run_monte_carlo(cfg, opts);

    // Analytic cross-check: exponential-equivalent rate over the mission.
    analysis::GroupMarkovParams p;
    p.total_blocks = scheme.total_blocks;
    p.tolerance = scheme.fault_tolerance();
    // Six-year average hazard of the Table 1 bathtub.
    p.disk_failure_rate =
        -std::log(1.0 - disk::BathtubFailureModel::paper_table1().cdf(
                            cfg.mission_time)) /
        cfg.mission_time.value();
    p.rebuild_rate = 1.0 / (cfg.detection_latency.value() +
                            cfg.block_rebuild_time().value());
    const double markov = analysis::system_loss_probability(
        p, cfg.group_count(), cfg.mission_time);

    const double overhead = 1.0 / scheme.storage_efficiency();
    const bool meets = r.loss_ci.hi * 100.0 <= max_loss_pct;
    if (meets && overhead < best_overhead) {
      best_overhead = overhead;
      best = scheme.str();
    }
    table.add_row({scheme.str(), std::to_string(cfg.disk_count()),
                   util::fmt_fixed(overhead, 2) + "x",
                   analysis::loss_cell(r), util::fmt_percent(markov, 2),
                   meets ? "yes" : "no"});
  }
  std::cout << table << "\n";
  if (best.empty()) {
    std::cout << "No configuration met the goal with statistical confidence;\n"
                 "raise the trial count or consider deeper redundancy.\n";
  } else {
    std::cout << "Cheapest configuration meeting the goal (by CI upper bound): "
              << best << " at " << util::fmt_fixed(best_overhead, 2)
              << "x storage overhead.\n";
  }
  return 0;
}
