// A miniature rendition of the paper's Figure 2: watch what happens to a
// small cluster when a disk dies, under FARM and under a traditional
// dedicated-spare rebuild.
//
//   $ ./trace_recovery
//
// Prints the block map before the failure, the recovery timeline, and the
// block map afterwards — under FARM the dead disk's blocks scatter across
// the cluster; with a dedicated spare they all pile onto the new disk.
#include <iostream>
#include <map>
#include <vector>

#include "farm/recovery.hpp"
#include "farm/storage_system.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace farm;
using namespace farm::core;

SystemConfig demo_config(RecoveryMode mode) {
  SystemConfig cfg;
  cfg.total_user_data = util::terabytes(1);  // 20 mirrored groups on 5 disks
  cfg.group_size = util::gigabytes(50);
  cfg.recovery_mode = mode;
  cfg.detection_latency = util::seconds(30);
  cfg.smart.enabled = false;
  return cfg;
}

/// "disk0: <A,0> <C,1> ..." rows, naming groups A, B, C, ... like Fig 2.
void print_block_map(StorageSystem& sys, const std::string& caption) {
  std::cout << caption << "\n";
  std::map<DiskId, std::vector<std::string>> per_disk;
  for (GroupIndex g = 0; g < sys.group_count(); ++g) {
    for (BlockIndex b = 0; b < sys.blocks_per_group(); ++b) {
      std::string name;
      name += static_cast<char>('A' + g % 26);
      if (g >= 26) name += std::to_string(g / 26);
      per_disk[sys.home(g, b)].push_back("<" + name + "," + std::to_string(b) + ">");
    }
  }
  for (DiskId d = 0; d < sys.disk_slots(); ++d) {
    std::cout << "  disk" << d << (sys.disk_at(d).alive() ? "  " : "† ") << ": ";
    for (const auto& s : per_disk[d]) std::cout << s << " ";
    std::cout << "\n";
  }
  std::cout << "\n";
}

void run_demo(RecoveryMode mode) {
  std::cout << "==================== " << to_string(mode)
            << " ====================\n";
  const SystemConfig cfg = demo_config(mode);
  StorageSystem sys(cfg, /*seed=*/7);
  sys.initialize();
  sim::Simulator sim;
  Metrics metrics;
  const auto policy = make_recovery_policy(sys, sim, metrics);

  print_block_map(sys, "Initial layout (" + std::to_string(sys.disk_slots()) +
                           " disks, " + std::to_string(sys.group_count()) +
                           " two-way-mirrored groups):");

  const DiskId victim = 3;
  std::cout << ">> t=0s: disk" << victim << " fails\n";
  sys.fail_disk(victim);
  policy->on_disk_failed(victim);
  sim.schedule_in(cfg.detection_latency,
                  [&] { policy->on_failure_detected(victim); });

  std::cout << ">> t=" << cfg.detection_latency.value()
            << "s: failure detected, recovery begins ("
            << util::to_string(cfg.block_rebuild_time()) << " per block at "
            << util::to_string(cfg.recovery_bandwidth) << ")\n";
  // Step the simulation manually so the timeline is visible.
  while (sim.pending_events() > 0) {
    const std::uint64_t done_before = metrics.rebuilds_completed();
    sim.step();
    if (metrics.rebuilds_completed() != done_before) {
      std::cout << "   t=" << util::to_string(sim.now()) << ": block rebuilt ("
                << metrics.rebuilds_completed() << " total)\n";
    }
  }
  std::cout << ">> recovery complete at t=" << util::to_string(sim.now())
            << " (" << metrics.rebuilds_completed() << " blocks)\n\n";

  print_block_map(sys, "Layout after recovery:");
}

}  // namespace

int main() {
  run_demo(RecoveryMode::kFarm);
  run_demo(RecoveryMode::kDedicatedSpare);
  std::cout << "Note how FARM scattered the dead disk's blocks across every\n"
               "surviving drive (Fig 2(d)), while the traditional scheme\n"
               "re-collected them all on the freshly provisioned spare disk\n"
               "(Fig 2(c)) — serializing the rebuild and stretching the\n"
               "window of vulnerability.\n";
  return 0;
}
