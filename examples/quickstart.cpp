// Quickstart: estimate the probability of data loss for a petabyte-scale
// storage system, with and without FARM.
//
//   $ ./quickstart [scale] [trials]
//
// `scale` multiplies the paper's 2 PB of user data (default 0.05 -> 100 TB,
// which runs in seconds); `trials` is the Monte-Carlo sample count.
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "farm/monte_carlo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::size_t trials = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 50;
  if (scale <= 0.0 || trials == 0) {
    std::cerr << "usage: quickstart [scale>0] [trials>0]\n";
    return 1;
  }

  using namespace farm;

  // Start from the paper's base system (Table 2) and shrink it.
  core::SystemConfig config = analysis::scaled_config(scale);
  config.stop_at_first_loss = true;  // we only need P(loss) here

  std::cout << "System: " << config.summary() << "\n"
            << "Mission: " << util::to_string(config.mission_time) << ", "
            << trials << " trials\n\n";

  util::Table table({"recovery", "P(data loss)", "disk failures/trial",
                     "rebuilds/trial"});
  for (const auto mode :
       {core::RecoveryMode::kFarm, core::RecoveryMode::kDedicatedSpare}) {
    config.recovery_mode = mode;
    core::MonteCarloOptions opts;
    opts.trials = trials;
    const core::MonteCarloResult r = core::run_monte_carlo(config, opts);
    table.add_row({core::to_string(mode), analysis::loss_cell(r),
                   util::fmt_fixed(r.mean_disk_failures, 1),
                   util::fmt_fixed(r.mean_rebuilds, 1)});
  }
  std::cout << table;
  std::cout << "\nFARM rebuilds each redundancy group in parallel across the\n"
               "cluster, so its window of vulnerability is minutes instead of\n"
               "the hours a dedicated-spare rebuild takes.\n";
  return 0;
}
