// End-to-end object store demo: the paper's full data path on real bytes.
//
//   $ ./object_store_demo
//
// Builds a 12-disk cluster with 4/6 Reed-Solomon redundancy groups, stores
// objects, survives a double disk failure with degraded reads, performs
// FARM-style declustered recovery, grows the cluster with a batch of new
// disks, and shows where everything ended up.
#include <iostream>
#include <string>

#include "store/object_store.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace farm;

std::vector<store::Byte> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<store::Byte> data(n);
  util::Xoshiro256 rng{seed};
  for (auto& b : data) b = static_cast<store::Byte>(rng.below(256));
  return data;
}

void print_cluster(const store::ObjectStore& s, const std::string& caption) {
  std::cout << caption << "\n";
  util::Table t({"disk", "status", "blocks", "bytes"});
  for (store::DiskId d = 0; d < s.cluster().disk_count(); ++d) {
    t.add_row({std::to_string(d), s.cluster().alive(d) ? "alive" : "FAILED",
               std::to_string(s.cluster().blocks_on(d)),
               std::to_string(s.cluster().bytes_on(d))});
  }
  std::cout << t << "\n";
}

}  // namespace

int main() {
  store::StoreConfig cfg;
  cfg.scheme = erasure::Scheme{4, 6};      // tolerates any 2 failures
  cfg.group_payload = 256 << 10;           // 256 KiB user data per group
  store::ObjectStore s(cfg, /*disks=*/12);

  std::cout << "Cluster: 12 disks, scheme " << cfg.scheme.str()
            << " (Reed-Solomon), " << cfg.group_payload / 1024
            << " KiB redundancy groups\n\n";

  // 1. Store some objects.
  const auto alpha = make_payload(1 << 20, 1);
  const auto beta = make_payload(700 << 10, 2);
  const auto gamma = make_payload(42, 3);
  s.put("alpha.bin", alpha);
  s.put("beta.bin", beta);
  s.put("gamma.txt", gamma);
  std::cout << "Stored 3 objects in " << s.group_count()
            << " redundancy groups\n";
  print_cluster(s, "Initial layout:");

  // 2. Double disk failure.
  std::cout << ">> disks 2 and 7 fail simultaneously\n\n";
  s.fail_disk(2);
  s.fail_disk(7);

  // 3. Degraded reads still succeed (any 4 of 6 blocks reconstruct).
  const bool ok = s.get("alpha.bin") == alpha && s.get("beta.bin") == beta &&
                  s.get("gamma.txt") == gamma;
  std::cout << "Degraded reads through the double failure: "
            << (ok ? "all objects intact" : "CORRUPTION!") << "\n";
  std::cout << "Damaged objects: " << s.damaged_objects().size() << "\n\n";

  // 4. FARM-style declustered recovery.
  const auto report = s.recover();
  std::cout << "Recovery: " << report.blocks_rebuilt << " blocks rebuilt across "
            << report.groups_repaired << " groups ("
            << report.groups_lost << " lost)\n";
  print_cluster(s, "After recovery (blocks scattered over survivors):");

  // 5. Grow the cluster; new disks join the placement function.
  std::cout << ">> adding a batch of 4 new disks, then failing disk 0\n\n";
  s.add_disks(4);
  s.fail_disk(0);
  const auto report2 = s.recover();
  std::cout << "Second recovery: " << report2.blocks_rebuilt
            << " blocks rebuilt\n";
  print_cluster(s, "Final layout (note the batch absorbing rebuilt blocks):");

  const bool final_ok = s.get("alpha.bin") == alpha &&
                        s.get("beta.bin") == beta && s.get("gamma.txt") == gamma;
  std::cout << "Final integrity check: "
            << (final_ok ? "every byte accounted for" : "CORRUPTION!") << "\n";
  return ok && final_ok && report.groups_lost == 0 ? 0 : 1;
}
