// Byte-level erasure-coding demo: encode a document into an m/n redundancy
// group, destroy up to k blocks, and reconstruct — the §2.1-§2.2 machinery
// on real data.
//
//   $ ./erasure_codec_demo [scheme] [--evenodd]
//   $ ./erasure_codec_demo 4/6
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "erasure/codec.hpp"
#include "util/random.hpp"

namespace {

std::string fingerprint(std::span<const farm::erasure::Byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : data) h = (h ^ b) * 0x100000001b3ULL;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace farm::erasure;

  Scheme scheme{4, 6};
  CodecPreference pref = CodecPreference::kAuto;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--evenodd") == 0) {
      pref = CodecPreference::kEvenOdd;
    } else {
      scheme = Scheme::parse(argv[i]);
    }
  }
  const auto codec = make_codec(scheme, pref);
  std::cout << "Codec: " << codec->name() << " (m=" << scheme.data_blocks
            << ", n=" << scheme.total_blocks << ", tolerates "
            << scheme.fault_tolerance() << " erasures, storage efficiency "
            << scheme.storage_efficiency() << ")\n\n";

  // A synthetic 1 MB object (the paper's default block granularity).
  std::vector<Byte> object(1 << 20);
  farm::util::Xoshiro256 rng{2004};
  for (auto& b : object) b = static_cast<Byte>(rng.below(256));
  std::cout << "Object: " << object.size() << " bytes, fingerprint "
            << fingerprint(object) << "\n";

  // Encode into n stored blocks.
  auto blocks = encode_object(*codec, object);
  std::cout << "Encoded into " << blocks.size() << " blocks of "
            << blocks[0].size() << " bytes each\n";

  // Destroy the k most inconvenient blocks: data blocks first.
  const unsigned k = scheme.fault_tolerance();
  std::vector<unsigned> destroyed;
  for (unsigned i = 0; i < k; ++i) destroyed.push_back(i);
  std::cout << "Destroying block(s):";
  for (unsigned d : destroyed) std::cout << " #" << d;
  std::cout << " (simulated disk failures)\n";

  std::vector<BlockRef> survivors;
  for (unsigned i = 0; i < scheme.total_blocks; ++i) {
    bool dead = false;
    for (unsigned d : destroyed) dead |= (d == i);
    if (!dead) survivors.push_back(BlockRef{i, blocks[i]});
  }

  // 1) Recover the whole object from survivors.
  const auto recovered = decode_object(*codec, survivors, object.size());
  std::cout << "Recovered object fingerprint: " << fingerprint(recovered)
            << (recovered == object ? "  [MATCH]\n" : "  [MISMATCH!]\n");

  // 2) Rebuild the destroyed blocks themselves (what FARM's recovery does).
  std::vector<std::vector<Byte>> rebuilt(destroyed.size(),
                                         std::vector<Byte>(blocks[0].size()));
  std::vector<BlockOut> missing;
  for (std::size_t i = 0; i < destroyed.size(); ++i) {
    missing.push_back(BlockOut{destroyed[i], rebuilt[i]});
  }
  codec->reconstruct(survivors, missing);
  bool all_match = true;
  for (std::size_t i = 0; i < destroyed.size(); ++i) {
    const bool match = rebuilt[i] == blocks[destroyed[i]];
    all_match &= match;
    std::cout << "Rebuilt block #" << destroyed[i] << ": "
              << fingerprint(rebuilt[i]) << (match ? "  [MATCH]" : "  [MISMATCH!]")
              << "\n";
  }
  return recovered == object && all_match ? 0 : 1;
}
